//! Equivalence properties for the indexed engines: the worklist chase
//! must reproduce the naive pair-scan chase exactly (same promoted
//! constants, same NEC partition up to representative choice, same
//! event and pass counts), and group-indexed TEST-FDs must agree with
//! the pairwise oracle under both conventions.
//!
//! Instances come from the `fdi-gen` workload generators (column-local
//! NEC classes — the regime where the engines are order-identical; see
//! `fdi_core::chase::index`) across a grid of null/NEC densities,
//! including adversarial planted violations.

use fdi_core::chase::{
    chase_naive, chase_plain, extended_chase, is_minimally_incomplete,
    is_minimally_incomplete_naive, order_replay_exact, Scheduler,
};
use fdi_core::testfd::{self, Convention};
use fdi_gen::{large_workload, plant_violation, random_fds, workload, Workload, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DENSITIES: [f64; 4] = [0.0, 0.1, 0.3, 0.6];

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (2usize..40, 0usize..4, 0usize..4, 0usize..3).prop_map(|(rows, nd, necd, coll)| WorkloadSpec {
        rows,
        attrs: 4,
        domain: 6, // small domains force collisions, nulls, and cascades
        null_density: DENSITIES[nd],
        nec_density: DENSITIES[necd],
        collision_rate: [0.2, 0.5, 0.9][coll],
    })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        0u64..1 << 32,
        arb_spec(),
        1usize..5,
        proptest::collection::vec(0usize..24, 0..2),
    )
        .prop_map(|(seed, spec, fd_count, violations)| {
            let mut w = workload(seed, &spec, fd_count);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
            for _ in violations {
                plant_violation(&mut rng, &mut w.instance, &w.fds);
            }
            w
        })
}

proptest! {
    /// The worklist chase and the naive pair-scan chase are the same
    /// function: identical chased instance (constants and NEC partition
    /// up to representative choice — that is what `canonical_form`
    /// quotients by), identical event and pass counts, and a result
    /// both minimality oracles accept.
    #[test]
    fn worklist_chase_equals_naive_chase(w in arb_workload()) {
        // The exactness claim below is only made on caveat-free
        // instances — which the generators promise to produce.
        prop_assert!(order_replay_exact(&w.instance));
        let naive = chase_naive(&w.instance, &w.fds);
        let indexed = chase_plain(&w.instance, &w.fds);
        prop_assert_eq!(
            naive.instance.canonical_form(),
            indexed.instance.canonical_form(),
            "chase results diverge on\n{}\nfds:\n{}",
            w.instance.render(true),
            w.fds.render(&w.schema)
        );
        // Full event-list equality (sites, classes, donors): workloads
        // use singleton dependents and no `nothing` values, the regime
        // where the engines replay each other exactly.
        prop_assert_eq!(&naive.events, &indexed.events);
        prop_assert_eq!(naive.passes, indexed.passes);
        prop_assert!(is_minimally_incomplete(&indexed.instance, &w.fds));
        prop_assert!(is_minimally_incomplete_naive(&indexed.instance, &w.fds));
        prop_assert_eq!(
            indexed.instance.necs().merge_count(),
            naive.instance.necs().merge_count(),
            "NEC merge counts diverge"
        );
    }

    /// FD order is rule order (the plain system is order-dependent), so
    /// the engines must agree under every permutation, not just the
    /// given one.
    #[test]
    fn engines_agree_under_fd_permutations(w in arb_workload(), rot in 0usize..6) {
        let k = w.fds.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.rotate_left(rot % k.max(1));
        if rot % 2 == 1 {
            order.reverse();
        }
        let fds = w.fds.permuted(&order);
        let naive = chase_naive(&w.instance, &fds);
        let indexed = chase_plain(&w.instance, &fds);
        prop_assert_eq!(
            naive.instance.canonical_form(),
            indexed.instance.canonical_form(),
            "order {:?} diverges on\n{}",
            order,
            w.instance.render(true)
        );
        prop_assert_eq!(naive.events.len(), indexed.events.len());
    }

    /// The minimality oracles agree on arbitrary (un-chased) instances,
    /// not only on fixpoints.
    #[test]
    fn minimality_oracles_agree(w in arb_workload()) {
        prop_assert_eq!(
            is_minimally_incomplete(&w.instance, &w.fds),
            is_minimally_incomplete_naive(&w.instance, &w.fds),
        );
    }

    /// Group-indexed TEST-FDs is the pairwise oracle, under both
    /// conventions, violation or no violation — including on chased
    /// instances (shared NEC classes) and across the `check` dispatch
    /// threshold.
    #[test]
    fn indexed_testfds_agrees_with_pairwise(w in arb_workload()) {
        for conv in [Convention::Strong, Convention::Weak] {
            let oracle = testfd::check_pairwise(&w.instance, &w.fds, conv).is_ok();
            prop_assert_eq!(
                testfd::check_grouped(&w.instance, &w.fds, conv).is_ok(),
                oracle,
                "grouped vs pairwise ({conv:?}) on\n{}",
                w.instance.render(true)
            );
            prop_assert_eq!(
                testfd::check(&w.instance, &w.fds, conv).is_ok(),
                oracle,
                "dispatch vs pairwise ({conv:?})"
            );
        }
        let chased = chase_plain(&w.instance, &w.fds).instance;
        for conv in [Convention::Strong, Convention::Weak] {
            prop_assert_eq!(
                testfd::check_grouped(&chased, &w.fds, conv).is_ok(),
                testfd::check_pairwise(&chased, &w.fds, conv).is_ok(),
                "grouped vs pairwise ({conv:?}) on chased instance"
            );
        }
    }

    /// The extended schedulers are the same function (Theorem 4(a)):
    /// the worklist `Fast` engine reaches the identical least
    /// congruence as the naive pairwise engine — same partition, same
    /// `nothing` classes, and same union count (every rule order
    /// performs exactly initial-classes − final-classes unions).
    #[test]
    fn fast_worklist_scheduler_equals_naive_pairs(w in arb_workload()) {
        let naive = extended_chase(&w.instance, &w.fds, Scheduler::NaivePairs);
        let fast = extended_chase(&w.instance, &w.fds, Scheduler::Fast);
        prop_assert_eq!(
            naive.instance.canonical_form(),
            fast.instance.canonical_form(),
            "schedulers diverge on\n{}\nfds:\n{}",
            w.instance.render(true),
            w.fds.render(&w.schema)
        );
        prop_assert_eq!(naive.nothing_classes, fast.nothing_classes);
        prop_assert_eq!(naive.unions, fast.unions, "union counts are order-invariant");
    }

    /// Satisfiable large-ish workloads stay weakly satisfiable through
    /// the indexed pipeline (chase + grouped weak check), and the
    /// indexed chase resolves them without leaving applicable rules.
    #[test]
    fn satisfiable_workloads_survive_the_indexed_pipeline(
        seed in 0u64..1 << 16,
        nd in 0usize..4,
        necd in 0usize..4,
    ) {
        let w = large_workload(seed, 96, DENSITIES[nd], DENSITIES[necd], 3);
        prop_assert!(w.instance.len() >= testfd::SMALL_N, "grouped path exercised");
        prop_assert!(testfd::check_weak(&w.instance, &w.fds).is_ok());
        let chased = chase_plain(&w.instance, &w.fds);
        prop_assert!(is_minimally_incomplete_naive(&chased.instance, &w.fds));
    }
}

/// A deterministic, non-proptest sweep across the density grid at a row
/// count pinned just above the dispatch threshold — cheap insurance
/// that the properties above also hold where `check` switches paths.
#[test]
fn dense_grid_at_dispatch_threshold() {
    for seed in 0..8u64 {
        for &nd in &DENSITIES[1..] {
            let spec = WorkloadSpec {
                rows: testfd::SMALL_N + 1,
                attrs: 4,
                domain: 8,
                null_density: nd,
                nec_density: 0.4,
                collision_rate: 0.7,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let fds = random_fds(&mut rng, spec.attrs, 3);
            let w = workload(seed.wrapping_mul(31), &spec, 3);
            let naive = chase_naive(&w.instance, &w.fds);
            let indexed = chase_plain(&w.instance, &w.fds);
            assert_eq!(
                naive.instance.canonical_form(),
                indexed.instance.canonical_form(),
                "seed {seed} nd {nd}"
            );
            for conv in [Convention::Strong, Convention::Weak] {
                assert_eq!(
                    testfd::check(&w.instance, &fds, conv).is_ok(),
                    testfd::check_pairwise(&w.instance, &fds, conv).is_ok(),
                    "seed {seed} nd {nd} {conv:?}"
                );
            }
        }
    }
}
