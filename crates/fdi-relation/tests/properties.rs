//! Property-based tests for the relational substrate.

use fdi_relation::attrs::{AttrId, AttrSet};
use fdi_relation::completion::CompletionSpace;
use fdi_relation::instance::Instance;
use fdi_relation::lattice::{instance_approximates, is_completion_of};
use fdi_relation::schema::Schema;
use fdi_relation::tuple::Tuple;
use fdi_relation::value::{NullId, Value};
use proptest::prelude::*;
use std::sync::Arc;

const ATTRS: usize = 3;
const DOM: usize = 3;

fn schema() -> Arc<Schema> {
    Schema::uniform("R", &["A", "B", "C"], DOM).unwrap()
}

/// A cell blueprint: Some(k) = the k-th domain constant, None = null with
/// the given shared-mark slot (0..4 marks available).
#[derive(Debug, Clone, Copy)]
enum CellPlan {
    Const(usize),
    Null(usize),
}

fn arb_cell() -> impl Strategy<Value = CellPlan> {
    prop_oneof![
        3 => (0..DOM).prop_map(CellPlan::Const),
        1 => (0usize..4).prop_map(CellPlan::Null),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<CellPlan>>> {
    proptest::collection::vec(proptest::collection::vec(arb_cell(), ATTRS), 1..5)
}

fn build_instance(rows: &[Vec<CellPlan>]) -> Instance {
    let schema = schema();
    let mut r = Instance::new(schema.clone());
    let mut marks: Vec<Option<NullId>> = vec![None; 4];
    for row in rows {
        let mut values = Vec::with_capacity(ATTRS);
        for (i, cell) in row.iter().enumerate() {
            let attr = AttrId(i as u16);
            match cell {
                CellPlan::Const(k) => {
                    let name = format!("{}_{k}", schema.attr_name(attr));
                    let sym = r.intern_constant(attr, &name).unwrap();
                    values.push(Value::Const(sym));
                }
                CellPlan::Null(mark) => {
                    let id = match marks[*mark] {
                        Some(id) => id,
                        None => {
                            let id = r.fresh_null();
                            marks[*mark] = Some(id);
                            id
                        }
                    };
                    values.push(Value::Null(id));
                }
            }
        }
        r.add_tuple(Tuple::new(values)).unwrap();
    }
    r
}

proptest! {
    /// Every enumerated completion is (a) complete, (b) approximated by
    /// the original instance, and (c) recognized by `is_completion_of`.
    #[test]
    fn enumerated_completions_are_genuine(rows in arb_rows()) {
        let r = build_instance(&rows);
        let scope = r.schema().all_attrs();
        let space = CompletionSpace::for_instance(&r, scope).unwrap();
        prop_assume!(space.count() <= 256);
        for tuples in space.iter() {
            let mut completed = Instance::new(r.schema().clone());
            for t in tuples {
                completed.add_tuple(t).unwrap();
            }
            prop_assert!(completed.is_complete());
            prop_assert!(instance_approximates(&r, &completed));
            prop_assert!(is_completion_of(&completed, &r));
        }
    }

    /// The completion count equals the number of enumerated completions,
    /// and completions are pairwise distinct.
    #[test]
    fn completion_count_matches_enumeration(rows in arb_rows()) {
        let r = build_instance(&rows);
        let scope = r.schema().all_attrs();
        let space = CompletionSpace::for_instance(&r, scope).unwrap();
        prop_assume!(space.count() <= 256);
        let all: Vec<Vec<Tuple>> = space.iter().collect();
        prop_assert_eq!(all.len() as u128, space.count());
        let distinct: std::collections::HashSet<String> =
            all.iter().map(|ts| format!("{ts:?}")).collect();
        prop_assert_eq!(distinct.len(), all.len());
    }

    /// Canonical forms are invariant under renaming null ids (rebuilding
    /// the same plan allocates different ids but identical structure).
    #[test]
    fn canonical_form_is_id_invariant(rows in arb_rows()) {
        let r1 = build_instance(&rows);
        // Rebuild with an id offset: burn a few ids first.
        let mut r2 = Instance::new(r1.schema().clone());
        for _ in 0..7 {
            let _ = r2.fresh_null();
        }
        let mut marks: Vec<Option<NullId>> = vec![None; 4];
        for row in &rows {
            let mut values = Vec::with_capacity(ATTRS);
            for (i, cell) in row.iter().enumerate() {
                let attr = AttrId(i as u16);
                match cell {
                    CellPlan::Const(k) => {
                        let name = format!("{}_{k}", r1.schema().attr_name(attr));
                        let sym = r2.intern_constant(attr, &name).unwrap();
                        values.push(Value::Const(sym));
                    }
                    CellPlan::Null(mark) => {
                        let id = match marks[*mark] {
                            Some(id) => id,
                            None => {
                                let id = r2.fresh_null();
                                marks[*mark] = Some(id);
                                id
                            }
                        };
                        values.push(Value::Null(id));
                    }
                }
            }
            r2.add_tuple(Tuple::new(values)).unwrap();
        }
        prop_assert_eq!(r1.canonical_form(), r2.canonical_form());
    }

    /// Parsing the rendered marked form round-trips the canonical form
    /// for instances without NEC-merged-but-differently-marked nulls.
    #[test]
    fn render_parse_round_trip(rows in arb_rows()) {
        let r = build_instance(&rows);
        let text = r.render(true);
        // strip the header and rule lines, convert cells back to tokens
        let body: String = text
            .lines()
            .skip(2)
            .map(|line| {
                line.trim_matches('|')
                    .split('|')
                    .map(str::trim)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = Instance::parse(r.schema().clone(), &body).unwrap();
        prop_assert_eq!(r.canonical_form(), reparsed.canonical_form());
    }

    /// Approximation is reflexive and antisymmetric up to canonical form,
    /// and completions sit above their sources.
    #[test]
    fn approximation_partial_order(rows in arb_rows()) {
        let r = build_instance(&rows);
        prop_assert!(instance_approximates(&r, &r));
        let scope = r.schema().all_attrs();
        let space = CompletionSpace::for_instance(&r, scope).unwrap();
        prop_assume!(space.count() >= 1 && space.count() <= 64);
        if let Some(tuples) = space.iter().next() {
            let mut c = Instance::new(r.schema().clone());
            for t in tuples {
                c.add_tuple(t).unwrap();
            }
            prop_assert!(instance_approximates(&r, &c));
            if r.has_nulls() {
                prop_assert!(!instance_approximates(&c, &r));
            }
        }
    }

    /// Projection onto the full attribute set is the identity (up to
    /// canonical form), and projections compose: π_B(π_A(r)) = π_B(r)
    /// for B ⊆ A.
    #[test]
    fn projection_identity_and_composition(
        rows in arb_rows(),
        outer_bits in 1u64..(1 << ATTRS),
        inner_bits in 1u64..(1 << ATTRS),
    ) {
        use fdi_relation::algebra::project;
        let r = build_instance(&rows);
        let full = project(&r, r.schema().all_attrs(), false).unwrap();
        prop_assert_eq!(r.canonical_form(), full.canonical_form());
        let outer = AttrSet(outer_bits);
        let inner_in_outer = AttrSet(inner_bits).intersect(outer);
        prop_assume!(!inner_in_outer.is_empty());
        let once = project(&r, inner_in_outer, false).unwrap();
        let staged_outer = project(&r, outer, false).unwrap();
        // re-express inner under the outer projection's attribute order
        let remapped: AttrSet = inner_in_outer
            .iter()
            .map(|a| {
                let pos = outer.iter().position(|b| b == a).unwrap();
                AttrId(pos as u16)
            })
            .collect();
        let twice = project(&staged_outer, remapped, false).unwrap();
        prop_assert_eq!(once.canonical_form(), twice.canonical_form());
    }

    /// Every original tuple is recovered by joining its own fragments:
    /// r ⊆ π_A(r) ⋈ π_B(r) whenever A ∪ B covers the schema.
    #[test]
    fn join_of_projections_contains_original(
        rows in arb_rows(),
        split in 1u64..((1 << ATTRS) - 1),
    ) {
        use fdi_relation::algebra::{natural_join, project};
        let r = build_instance(&rows);
        let left_attrs = AttrSet(split);
        let right_attrs = r.schema().all_attrs().difference(left_attrs);
        prop_assume!(!right_attrs.is_empty());
        // overlap by one attribute so the join is not a blind cartesian
        let bridge = left_attrs.iter().next().unwrap();
        let right_attrs = right_attrs.with(bridge);
        let left = project(&r, left_attrs, true).unwrap();
        let right = project(&r, right_attrs, true).unwrap();
        let joined = natural_join(&left, &right).unwrap();
        // every original tuple reappears (values compared by rendering
        // in the original attribute order, null classes by root)
        let joined_schema = joined.schema().clone();
        let mapping: Vec<usize> = r
            .schema()
            .attrs()
            .iter()
            .map(|def| joined_schema.attr_id(&def.name).unwrap().index())
            .collect();
        for row in r.row_ids() {
            let want: Vec<String> = r
                .schema()
                .all_attrs()
                .iter()
                .map(|a| match r.value(row, a) {
                    Value::Null(n) => format!("?{}", r.necs().find_readonly(n).0),
                    v => v.render(r.symbols(), false),
                })
                .collect();
            let found = joined.row_ids().any(|j| {
                mapping.iter().enumerate().all(|(orig, &col)| {
                    let v = joined.value(j, AttrId(col as u16));
                    let rendered = match v {
                        Value::Null(n) => format!("?{}", joined.necs().find_readonly(n).0),
                        v => v.render(joined.symbols(), false),
                    };
                    rendered == want[orig]
                })
            });
            prop_assert!(found, "row {row} ({want:?}) lost in the round trip");
        }
    }

    /// Scoped spaces never touch out-of-scope attributes.
    #[test]
    fn scope_isolation(rows in arb_rows(), scope_bits in 1u64..(1 << ATTRS)) {
        let r = build_instance(&rows);
        let scope = AttrSet(scope_bits);
        let space = CompletionSpace::for_instance(&r, scope).unwrap();
        prop_assume!(space.count() <= 128);
        let outside = r.schema().all_attrs().difference(scope);
        for tuples in space.iter() {
            for (id, t) in r.row_ids().zip(tuples.iter()) {
                for a in outside.iter() {
                    prop_assert_eq!(t.get(a), r.tuple(id).get(a));
                }
            }
        }
    }
}
