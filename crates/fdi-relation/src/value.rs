//! Database values: constants, marked nulls, and the `nothing` element.
//!
//! §2 of the paper admits one kind of null — the **missing** null, a value
//! that exists but is presently unknown — and argues the *inconsistent*
//! null has no place where semantic rules must hold. §6 then
//! reintroduces inconsistency in a controlled way: the extended NS-rules
//! replace contradicting constants with the **nothing** data value, whose
//! presence witnesses that weak satisfiability fails (Theorem 4).
//!
//! Nulls are **marked**: each carries a [`NullId`]. Two occurrences of
//! the same id always denote the same unknown value; additionally a
//! [`crate::nec::NecStore`] can equate distinct ids (Definition 1's
//! null-equality constraints). In the information lattice a null
//! approximates every constant, and `nothing` sits above everything
//! (over-defined).

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// Identifier of a marked null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

impl NullId {
    /// The id as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A database value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A known constant (interned symbol).
    Const(Symbol),
    /// A missing (existing-but-unknown) value — the paper's null.
    Null(NullId),
    /// The inconsistent element introduced by the extended NS-rules
    /// (§6): merging two distinct constants yields `nothing`.
    Nothing,
}

impl Value {
    /// Returns `true` for [`Value::Const`].
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns `true` for [`Value::Null`].
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns `true` for [`Value::Nothing`].
    #[inline]
    pub fn is_nothing(self) -> bool {
        matches!(self, Value::Nothing)
    }

    /// The constant symbol, if this is a constant.
    #[inline]
    pub fn as_const(self) -> Option<Symbol> {
        match self {
            Value::Const(s) => Some(s),
            _ => None,
        }
    }

    /// The null id, if this is a null.
    #[inline]
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            _ => None,
        }
    }

    /// Information (approximation) ordering on values: a null
    /// approximates every value, a constant approximates itself (and
    /// `nothing`), and `nothing` — the over-defined top — approximates
    /// only itself.
    ///
    /// Note: this is the *unmarked* ordering; whether two *nulls* denote
    /// the same unknown is the business of [`crate::nec::NecStore`].
    pub fn approximates(self, other: Value) -> bool {
        match (self, other) {
            (Value::Null(_), _) => true,
            (Value::Const(a), Value::Const(b)) => a == b,
            (_, Value::Nothing) => true,
            _ => false,
        }
    }

    /// Least upper bound in the information lattice, for definite values:
    /// `null ⊔ x = x`, `c ⊔ c = c`, `c ⊔ c' = nothing` (`c ≠ c'`),
    /// `nothing ⊔ x = nothing`. The lub of two *nulls* is represented by
    /// the smaller id (callers tracking NECs must union the classes —
    /// the chase engines do).
    pub fn lub(self, other: Value) -> Value {
        match (self, other) {
            (Value::Nothing, _) | (_, Value::Nothing) => Value::Nothing,
            (Value::Null(a), Value::Null(b)) => Value::Null(a.min(b)),
            (Value::Null(_), v) | (v, Value::Null(_)) => v,
            (Value::Const(a), Value::Const(b)) => {
                if a == b {
                    Value::Const(a)
                } else {
                    Value::Nothing
                }
            }
        }
    }

    /// Renders the value: the constant's text, `-` for a null (with the
    /// mark when `marked` is set), `#!` for nothing.
    pub fn render(self, symbols: &SymbolTable, marked: bool) -> String {
        match self {
            Value::Const(s) => symbols.resolve(s).to_string(),
            Value::Null(n) => {
                if marked {
                    format!("?{}", n.0)
                } else {
                    "-".to_string()
                }
            }
            Value::Nothing => "#!".to_string(),
        }
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Const(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "{n}"),
            Value::Nothing => write!(f, "#!"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn classification() {
        assert!(Value::Const(sym(0)).is_const());
        assert!(Value::Null(NullId(0)).is_null());
        assert!(Value::Nothing.is_nothing());
        assert_eq!(Value::Const(sym(3)).as_const(), Some(sym(3)));
        assert_eq!(Value::Null(NullId(7)).as_null(), Some(NullId(7)));
        assert_eq!(Value::Nothing.as_const(), None);
    }

    #[test]
    fn approximation_ordering() {
        let c0 = Value::Const(sym(0));
        let c1 = Value::Const(sym(1));
        let null = Value::Null(NullId(0));
        assert!(null.approximates(c0));
        assert!(null.approximates(Value::Nothing));
        assert!(c0.approximates(c0));
        assert!(!c0.approximates(c1));
        assert!(c0.approximates(Value::Nothing));
        assert!(!Value::Nothing.approximates(c0));
        assert!(Value::Nothing.approximates(Value::Nothing));
        assert!(!c0.approximates(null));
    }

    #[test]
    fn lub_is_the_chase_merge() {
        let c0 = Value::Const(sym(0));
        let c1 = Value::Const(sym(1));
        let null = Value::Null(NullId(4));
        assert_eq!(null.lub(c0), c0);
        assert_eq!(c0.lub(null), c0);
        assert_eq!(c0.lub(c0), c0);
        assert_eq!(
            c0.lub(c1),
            Value::Nothing,
            "distinct constants merge to nothing"
        );
        assert_eq!(Value::Nothing.lub(c0), Value::Nothing);
        assert_eq!(
            Value::Null(NullId(9)).lub(Value::Null(NullId(2))),
            Value::Null(NullId(2))
        );
    }

    #[test]
    fn lub_is_commutative_and_idempotent() {
        let values = [
            Value::Const(sym(0)),
            Value::Const(sym(1)),
            Value::Null(NullId(0)),
            Value::Nothing,
        ];
        for a in values {
            assert_eq!(a.lub(a), a);
            for b in values {
                assert_eq!(a.lub(b), b.lub(a));
            }
        }
    }

    #[test]
    fn rendering() {
        let mut t = SymbolTable::new();
        let s = t.intern("e1");
        assert_eq!(Value::Const(s).render(&t, false), "e1");
        assert_eq!(Value::Null(NullId(3)).render(&t, false), "-");
        assert_eq!(Value::Null(NullId(3)).render(&t, true), "?3");
        assert_eq!(Value::Nothing.render(&t, false), "#!");
    }
}
