//! The approximation lattice on instances.
//!
//! §2 of the paper, following Scott's theory of computation: adding null
//! to a domain makes it a lattice ordered by information content; nulls
//! approximate every value, and the extended operations must be
//! continuous. [`crate::value::Value::approximates`] and
//! [`crate::tuple::Tuple::approximates`] give the value- and tuple-level
//! orderings; this module lifts them to instances and connects them to
//! completions.

use crate::instance::Instance;

/// Pointwise (row-aligned) approximation: `a ⊑ b` iff both instances
/// have the same schema arity and row count, and every tuple of `a`
/// approximates the corresponding tuple of `b`.
///
/// The chase only ever *refines* an instance in place, so row alignment
/// is the natural comparison for chase progress; it deliberately does not
/// search for a row permutation.
pub fn instance_approximates(a: &Instance, b: &Instance) -> bool {
    a.arity() == b.arity()
        && a.len() == b.len()
        && a.tuples()
            .zip(b.tuples())
            .all(|(ta, tb)| ta.approximates(tb))
}

/// Is `b` a completion of `a`? `b` must be complete (constants only),
/// row-aligned with `a`, agree with `a`'s constants, and substitute
/// NEC-equivalent nulls of `a` consistently.
pub fn is_completion_of(b: &Instance, a: &Instance) -> bool {
    if !b.is_complete() || a.len() != b.len() || a.arity() != b.arity() {
        return false;
    }
    // Consistency across rows: track each NEC class's substituted symbol.
    let mut class_subst: Vec<(crate::value::NullId, crate::value::Value)> = Vec::new();
    let all = a.schema().all_attrs();
    for (ta, tb) in a.tuples().zip(b.tuples()) {
        for attr in all.iter() {
            match (ta.get(attr), tb.get(attr)) {
                (crate::value::Value::Const(x), crate::value::Value::Const(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (crate::value::Value::Null(n), substituted) => {
                    let root = a.necs().find_readonly(n);
                    match class_subst.iter().find(|(r, _)| *r == root) {
                        Some((_, prior)) => {
                            if *prior != substituted {
                                return false;
                            }
                        }
                        None => class_subst.push((root, substituted)),
                    }
                }
                (crate::value::Value::Nothing, _) => return false,
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrId;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("A", ["a1", "a2"])
            .attribute("B", ["b1", "b2"])
            .build()
            .unwrap()
    }

    #[test]
    fn chase_refinement_is_approximation() {
        let partial = Instance::parse(schema(), "a1 -\na2 b2").unwrap();
        let refined = Instance::parse(schema(), "a1 b1\na2 b2").unwrap();
        assert!(instance_approximates(&partial, &refined));
        assert!(!instance_approximates(&refined, &partial));
        assert!(instance_approximates(&partial, &partial));
    }

    #[test]
    fn misaligned_instances_do_not_compare() {
        let one = Instance::parse(schema(), "a1 b1").unwrap();
        let two = Instance::parse(schema(), "a1 b1\na2 b2").unwrap();
        assert!(!instance_approximates(&one, &two));
    }

    #[test]
    fn completions_are_detected() {
        let partial = Instance::parse(schema(), "a1 ?x\na2 ?x").unwrap();
        let consistent = Instance::parse(schema(), "a1 b1\na2 b1").unwrap();
        let inconsistent = Instance::parse(schema(), "a1 b1\na2 b2").unwrap();
        assert!(is_completion_of(&consistent, &partial));
        assert!(
            !is_completion_of(&inconsistent, &partial),
            "the shared mark must receive one value"
        );
        assert!(
            !is_completion_of(&partial, &partial),
            "a completion is total"
        );
    }

    #[test]
    fn nothing_has_no_completion() {
        let a = Instance::parse(schema(), "a1 #!").unwrap();
        let b = Instance::parse(schema(), "a1 b1").unwrap();
        assert!(!is_completion_of(&b, &a));
        // but nothing is approximated by constants in the value order
        assert!(a.tuple(a.nth_row(0)).get(AttrId(1)).is_nothing());
    }

    #[test]
    fn constants_must_match_for_completion() {
        let a = Instance::parse(schema(), "a1 b1").unwrap();
        let b = Instance::parse(schema(), "a2 b1").unwrap();
        assert!(!is_completion_of(&b, &a));
        assert!(
            is_completion_of(&a, &a),
            "a complete instance completes itself"
        );
    }
}
