//! Tuples: fixed-arity vectors of [`Value`]s.

use crate::attrs::{AttrId, AttrSet};
use crate::nec::NecStore;
use crate::value::{NullId, Value};
use std::fmt;

/// A tuple of a relation instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at attribute `a`.
    ///
    /// # Panics
    /// Panics when `a` is out of range.
    #[inline]
    pub fn get(&self, a: AttrId) -> Value {
        self.values[a.index()]
    }

    /// Replaces the value at attribute `a`.
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.values[a.index()] = v;
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projection onto an attribute set, in increasing attribute order.
    pub fn project(&self, attrs: AttrSet) -> impl Iterator<Item = Value> + '_ {
        attrs.iter().map(move |a| self.get(a))
    }

    /// Does the projection on `attrs` contain a null? This is the paper's
    /// `t[X] = null` convention (§6: "`t[X] = null` implies that one of
    /// the `Xᵢ` values is null").
    pub fn has_null_on(&self, attrs: AttrSet) -> bool {
        attrs.iter().any(|a| self.get(a).is_null())
    }

    /// Does the projection on `attrs` contain a `nothing`?
    pub fn has_nothing_on(&self, attrs: AttrSet) -> bool {
        attrs.iter().any(|a| self.get(a).is_nothing())
    }

    /// Is the projection on `attrs` entirely constants?
    pub fn is_total_on(&self, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.get(a).is_const())
    }

    /// The attributes within `attrs` holding nulls, with their ids.
    pub fn nulls_on(&self, attrs: AttrSet) -> impl Iterator<Item = (AttrId, NullId)> + '_ {
        attrs.iter().filter_map(move |a| match self.get(a) {
            Value::Null(n) => Some((a, n)),
            _ => None,
        })
    }

    /// Definite equality of two projections: both total on `attrs` and
    /// symbol-equal everywhere. (Null-aware comparisons are convention
    /// dependent and live with the algorithms that define them.)
    pub fn definitely_equal_on(&self, other: &Tuple, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| {
            matches!(
                (self.get(a), other.get(a)),
                (Value::Const(x), Value::Const(y)) if x == y
            )
        })
    }

    /// Componentwise agreement on `attrs` where two values *agree* when
    /// they are equal constants or NEC-equivalent nulls. This is the
    /// trigger condition of the NS-rules (Definition 2:
    /// `tᵢ[X] = tⱼ[X] ≠ null` or `NEC: tᵢ[X] := tⱼ[X]`, read
    /// componentwise).
    pub fn agrees_on(&self, other: &Tuple, attrs: AttrSet, necs: &NecStore) -> bool {
        attrs.iter().all(|a| match (self.get(a), other.get(a)) {
            (Value::Const(x), Value::Const(y)) => x == y,
            (Value::Null(m), Value::Null(n)) => necs.same_class(m, n),
            _ => false,
        })
    }

    /// Information-ordering comparison ignoring null marks: `self ⊑
    /// other` componentwise (see [`Value::approximates`]).
    pub fn approximates(&self, other: &Tuple) -> bool {
        self.arity() == other.arity()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.approximates(*b))
    }

    /// Is `other` a completion of `self` on `attrs`? `other` must be
    /// total on `attrs`, agree with `self` on constants, and give
    /// NEC-equivalent nulls of `self` identical constants.
    pub fn is_completed_by(&self, other: &Tuple, attrs: AttrSet, necs: &NecStore) -> bool {
        if !other.is_total_on(attrs) {
            return false;
        }
        let mut class_values: Vec<(NullId, Value)> = Vec::new();
        for a in attrs.iter() {
            match (self.get(a), other.get(a)) {
                (Value::Const(x), Value::Const(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Value::Null(n), substituted) => {
                    let root = necs.find_readonly(n);
                    match class_values.iter().find(|(r, _)| *r == root) {
                        Some((_, prior)) => {
                            if *prior != substituted {
                                return false;
                            }
                        }
                        None => class_values.push((root, substituted)),
                    }
                }
                (Value::Nothing, _) => return false,
                _ => unreachable!("other is total on attrs"),
            }
        }
        true
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn c(i: u32) -> Value {
        Value::Const(Symbol(i))
    }

    fn null(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    fn attrs(ids: &[u16]) -> AttrSet {
        ids.iter().map(|i| AttrId(*i)).collect()
    }

    #[test]
    fn projections_and_null_queries() {
        let t = Tuple::new(vec![c(0), null(0), c(2)]);
        assert_eq!(t.arity(), 3);
        assert!(t.has_null_on(attrs(&[0, 1])));
        assert!(!t.has_null_on(attrs(&[0, 2])));
        assert!(t.is_total_on(attrs(&[0, 2])));
        assert!(!t.is_total_on(attrs(&[1])));
        let nulls: Vec<_> = t.nulls_on(attrs(&[0, 1, 2])).collect();
        assert_eq!(nulls, vec![(AttrId(1), NullId(0))]);
        let proj: Vec<Value> = t.project(attrs(&[2, 0])).collect();
        assert_eq!(proj, vec![c(0), c(2)], "projection is in attribute order");
    }

    #[test]
    fn definite_equality_ignores_nulls() {
        let t1 = Tuple::new(vec![c(0), null(0)]);
        let t2 = Tuple::new(vec![c(0), null(0)]);
        assert!(t1.definitely_equal_on(&t2, attrs(&[0])));
        assert!(
            !t1.definitely_equal_on(&t2, attrs(&[0, 1])),
            "nulls are never definitely equal — even the same mark"
        );
    }

    #[test]
    fn agreement_uses_nec_classes() {
        let mut necs = NecStore::new();
        let t1 = Tuple::new(vec![c(0), null(0)]);
        let t2 = Tuple::new(vec![c(0), null(1)]);
        assert!(!t1.agrees_on(&t2, attrs(&[0, 1]), &necs));
        necs.union(NullId(0), NullId(1));
        assert!(t1.agrees_on(&t2, attrs(&[0, 1]), &necs));
        // same mark agrees trivially
        let t3 = Tuple::new(vec![c(0), null(7)]);
        assert!(t3.agrees_on(&t3.clone(), attrs(&[0, 1]), &NecStore::new()));
    }

    #[test]
    fn approximation_is_componentwise() {
        let partial = Tuple::new(vec![c(0), null(0)]);
        let total = Tuple::new(vec![c(0), c(5)]);
        assert!(partial.approximates(&total));
        assert!(!total.approximates(&partial));
        let wrong = Tuple::new(vec![c(1), c(5)]);
        assert!(!partial.approximates(&wrong));
    }

    #[test]
    fn completion_respects_nec_classes() {
        let mut necs = NecStore::new();
        necs.union(NullId(0), NullId(1));
        let t = Tuple::new(vec![null(0), null(1), c(9)]);
        let same = Tuple::new(vec![c(3), c(3), c(9)]);
        let diff = Tuple::new(vec![c(3), c(4), c(9)]);
        let all = attrs(&[0, 1, 2]);
        assert!(t.is_completed_by(&same, all, &necs));
        assert!(
            !t.is_completed_by(&diff, all, &necs),
            "NEC-equal nulls must receive the same constant"
        );
        // without the NEC, differing substitutions are fine
        assert!(t.is_completed_by(&diff, all, &NecStore::new()));
        // a non-total candidate is never a completion
        let partial = Tuple::new(vec![c(3), null(5), c(9)]);
        assert!(!t.is_completed_by(&partial, all, &necs));
        // constants must be preserved
        let clobbered = Tuple::new(vec![c(3), c(3), c(8)]);
        assert!(!t.is_completed_by(&clobbered, all, &necs));
    }

    #[test]
    fn set_replaces_values() {
        let mut t = Tuple::new(vec![c(0), null(0)]);
        t.set(AttrId(1), c(4));
        assert_eq!(t.get(AttrId(1)), c(4));
        assert!(t.is_total_on(attrs(&[0, 1])));
    }

    #[test]
    fn display_is_parenthesized() {
        let t = Tuple::new(vec![c(0), null(2), Value::Nothing]);
        assert_eq!(t.to_string(), "(s0, ?2, #!)");
    }
}
