//! Finite attribute domains.
//!
//! §4 of the paper: "the concept of an attribute domain and its size is
//! important. Domains are finite and are assumed known." Finiteness is
//! what makes the `[F2]` domain-exhaustion case of Proposition 1 possible
//! at all, and domain size drives the completion counts of §2's
//! evaluation rule.
//!
//! We also support *unbounded* domains for the classical (null-free)
//! algorithms; any operation that must enumerate completions over an
//! unbounded domain reports [`crate::error::RelationError::UnboundedDomain`].

use crate::symbol::{Symbol, SymbolTable};

/// The domain of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// A finite, known domain — the paper's standing assumption.
    /// The symbols are kept sorted by id for deterministic enumeration.
    Finite(Vec<Symbol>),
    /// An unbounded domain: completions cannot be enumerated, and the
    /// `[F2]` case can never fire (there is always a fresh value).
    Unbounded,
}

impl Domain {
    /// Builds a finite domain, deduplicating and sorting the symbols.
    pub fn finite<I: IntoIterator<Item = Symbol>>(symbols: I) -> Domain {
        let mut v: Vec<Symbol> = symbols.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Domain::Finite(v)
    }

    /// Number of values, or `None` when unbounded.
    pub fn size(&self) -> Option<usize> {
        match self {
            Domain::Finite(v) => Some(v.len()),
            Domain::Unbounded => None,
        }
    }

    /// Returns `true` iff the domain is finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, Domain::Finite(_))
    }

    /// Membership test; unbounded domains contain every symbol.
    pub fn contains(&self, sym: Symbol) -> bool {
        match self {
            Domain::Finite(v) => v.binary_search(&sym).is_ok(),
            Domain::Unbounded => true,
        }
    }

    /// The members of a finite domain (sorted); empty for unbounded.
    pub fn members(&self) -> &[Symbol] {
        match self {
            Domain::Finite(v) => v,
            Domain::Unbounded => &[],
        }
    }

    /// The members *not* present in `used`, i.e. the candidates for the
    /// "value of the domain that does not appear in r" substitution
    /// (condition (2) of §4). Sorted; empty for unbounded domains.
    pub fn missing_from(&self, used: &[Symbol]) -> Vec<Symbol> {
        match self {
            Domain::Finite(v) => v.iter().copied().filter(|s| !used.contains(s)).collect(),
            Domain::Unbounded => Vec::new(),
        }
    }

    /// Renders as `{a1,a2,…}` or `unbounded`.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        match self {
            Domain::Finite(v) => {
                let mut out = String::from("{");
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(symbols.resolve(*s));
                }
                out.push('}');
                out
            }
            Domain::Unbounded => "unbounded".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_domains_sort_and_dedup() {
        let d = Domain::finite([Symbol(3), Symbol(1), Symbol(3)]);
        assert_eq!(d.members(), &[Symbol(1), Symbol(3)]);
        assert_eq!(d.size(), Some(2));
        assert!(d.contains(Symbol(1)));
        assert!(!d.contains(Symbol(2)));
        assert!(d.is_finite());
    }

    #[test]
    fn unbounded_domains_contain_everything() {
        let d = Domain::Unbounded;
        assert_eq!(d.size(), None);
        assert!(d.contains(Symbol(42)));
        assert!(d.members().is_empty());
        assert!(!d.is_finite());
    }

    #[test]
    fn missing_from_lists_unused_values() {
        let d = Domain::finite([Symbol(0), Symbol(1), Symbol(2)]);
        assert_eq!(d.missing_from(&[Symbol(1)]), vec![Symbol(0), Symbol(2)]);
        assert_eq!(
            d.missing_from(&[Symbol(0), Symbol(1), Symbol(2)]),
            Vec::<Symbol>::new()
        );
        assert!(Domain::Unbounded.missing_from(&[]).is_empty());
    }

    #[test]
    fn rendering() {
        let mut t = SymbolTable::new();
        let a = t.intern("a1");
        let b = t.intern("a2");
        let d = Domain::finite([b, a]);
        assert_eq!(d.render(&t), "{a1,a2}");
        assert_eq!(Domain::Unbounded.render(&t), "unbounded");
    }
}
