//! Null-equality constraints (NECs) as a union–find over null ids.
//!
//! Definition 1 of the paper: *a null-equality constraint is a statement
//! to the effect that two null values are equal — they must take the same
//! value in any substitution.* NECs partition the nulls of an instance
//! into equivalence classes; the NS-rules of §6 introduce new NECs when
//! two nulls are forced to agree, and every satisfiability convention in
//! Theorems 2–3 consults these classes when comparing nulls.
//!
//! Implementation: a standard union–find with union by rank and path
//! compression, growing on demand as null ids are allocated.

use crate::serial::{self, DecodeError, Reader};
use crate::value::NullId;
use std::collections::HashMap;

/// Union–find over null equivalence classes.
///
/// Equality is **representation** equality (same parent pointers, ranks,
/// and merge count), which is what the durability layer's exact-state
/// round-trip asserts — two stores can describe the same partition yet
/// compare unequal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NecStore {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of union operations performed (distinct-class merges).
    merges: usize,
}

impl NecStore {
    /// An empty store.
    pub fn new() -> NecStore {
        NecStore::default()
    }

    fn ensure(&mut self, id: NullId) {
        let need = id.index() + 1;
        while self.parent.len() < need {
            self.parent.push(self.parent.len() as u32);
            self.rank.push(0);
        }
    }

    /// Representative of `id`'s class, with path compression.
    pub fn find(&mut self, id: NullId) -> NullId {
        self.ensure(id);
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = id.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        NullId(root)
    }

    /// Representative without mutation (no compression); ids never seen
    /// are their own class.
    pub fn find_readonly(&self, id: NullId) -> NullId {
        let mut cur = id.0;
        while (cur as usize) < self.parent.len() && self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        NullId(cur)
    }

    /// Introduces the NEC `a := b`. Returns `true` when the two classes
    /// were distinct (knowledge increased).
    pub fn union(&mut self, a: NullId, b: NullId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra.index()] >= self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        self.merges += 1;
        true
    }

    /// Do `a` and `b` denote the same unknown value?
    pub fn same_class(&self, a: NullId, b: NullId) -> bool {
        a == b || self.find_readonly(a) == self.find_readonly(b)
    }

    /// Number of distinct-class merges performed so far.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// A fully-compressed, read-only view of the partition: every id maps
    /// directly to its class representative, so lookups are a single
    /// array read instead of a parent-chain walk.
    ///
    /// [`NecStore::find_readonly`] deliberately skips path compression
    /// (it takes `&self`), which makes it `O(chain)` per call — too slow
    /// for the grouping hot loops that compare every cell of an instance.
    /// Those loops take one snapshot up front and query it; the snapshot
    /// is invalidated by subsequent [`NecStore::union`] calls, so it is a
    /// per-pass structure, not a cache.
    pub fn canonical_snapshot(&self) -> NecSnapshot {
        const UNRESOLVED: u32 = u32::MAX;
        let n = self.parent.len();
        let mut roots = vec![UNRESOLVED; n];
        let mut chain = Vec::new();
        for id in 0..n {
            if roots[id] != UNRESOLVED {
                continue;
            }
            chain.clear();
            let mut cur = id;
            while roots[cur] == UNRESOLVED && self.parent[cur] as usize != cur {
                chain.push(cur);
                cur = self.parent[cur] as usize;
            }
            let root = if roots[cur] != UNRESOLVED {
                roots[cur]
            } else {
                cur as u32
            };
            roots[cur] = root;
            for &link in &chain {
                roots[link] = root;
            }
        }
        NecSnapshot { roots }
    }

    /// Number of tracked ids (snapshot length); ids at or above this are
    /// untouched singletons.
    pub fn tracked_ids(&self) -> usize {
        self.parent.len()
    }

    /// Serializes the exact union–find representation (parent pointers,
    /// ranks, merge count) — not just the partition it denotes — so a
    /// decoded store is indistinguishable from the original under any
    /// later sequence of operations (same compression paths, same union
    /// tie-breaks).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        serial::put_u32(out, self.parent.len() as u32);
        for &p in &self.parent {
            serial::put_u32(out, p);
        }
        for &r in &self.rank {
            serial::put_u8(out, r);
        }
        serial::put_u64(out, self.merges as u64);
    }

    /// Decodes a store serialized by [`NecStore::encode_state`],
    /// validating that every parent pointer is in range.
    pub fn decode_state(r: &mut Reader<'_>) -> Result<NecStore, DecodeError> {
        let n = r.u32()? as usize;
        let mut parent = Vec::with_capacity(n);
        for _ in 0..n {
            let p = r.u32()?;
            if p as usize >= n {
                return Err(r.err(format!("parent pointer {p} out of range (store size {n})")));
            }
            parent.push(p);
        }
        let mut rank = Vec::with_capacity(n);
        for _ in 0..n {
            rank.push(r.u8()?);
        }
        let merges = r.u64()? as usize;
        Ok(NecStore {
            parent,
            rank,
            merges,
        })
    }

    /// Groups the given null ids into their equivalence classes.
    pub fn classes_of<I: IntoIterator<Item = NullId>>(&self, ids: I) -> Vec<Vec<NullId>> {
        let mut groups: HashMap<NullId, Vec<NullId>> = HashMap::new();
        let mut order: Vec<NullId> = Vec::new();
        for id in ids {
            let root = self.find_readonly(id);
            let entry = groups.entry(root).or_default();
            if entry.is_empty() {
                order.push(root);
            }
            if !entry.contains(&id) {
                entry.push(id);
            }
        }
        order
            .into_iter()
            .map(|r| groups.remove(&r).unwrap())
            .collect()
    }
}

/// Read-only, fully-compressed view of a [`NecStore`] partition.
///
/// Built by [`NecStore::canonical_snapshot`]; stale after any later
/// `union`. Equality compares the fully-compressed root tables
/// entry-for-entry — two snapshots are equal exactly when their stores
/// tracked the same id range and partition it identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NecSnapshot {
    roots: Vec<u32>,
}

impl NecSnapshot {
    /// The class representative of `id`; ids never seen by the store are
    /// their own class.
    #[inline]
    pub fn root(&self, id: NullId) -> NullId {
        match self.roots.get(id.index()) {
            Some(&r) => NullId(r),
            None => id,
        }
    }

    /// Do `a` and `b` denote the same unknown value?
    #[inline]
    pub fn same_class(&self, a: NullId, b: NullId) -> bool {
        a == b || self.root(a) == self.root(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NullId {
        NullId(i)
    }

    #[test]
    fn snapshot_matches_find_readonly() {
        let mut store = NecStore::new();
        store.union(n(0), n(1));
        store.union(n(1), n(2));
        store.union(n(5), n(9));
        store.union(n(9), n(2));
        let snap = store.canonical_snapshot();
        for i in 0..12 {
            assert_eq!(snap.root(n(i)), store.find_readonly(n(i)), "id {i}");
        }
        assert!(snap.same_class(n(0), n(5)));
        assert!(!snap.same_class(n(0), n(3)));
        // ids beyond the tracked range are their own class
        assert_eq!(snap.root(n(1000)), n(1000));
        assert!(snap.same_class(n(1000), n(1000)));
        assert!(!snap.same_class(n(1000), n(1001)));
    }

    #[test]
    fn fresh_ids_are_their_own_class() {
        let store = NecStore::new();
        assert!(store.same_class(n(3), n(3)));
        assert!(!store.same_class(n(3), n(4)));
        assert_eq!(store.find_readonly(n(9)), n(9));
    }

    #[test]
    fn union_merges_classes() {
        let mut store = NecStore::new();
        assert!(store.union(n(0), n(1)));
        assert!(store.same_class(n(0), n(1)));
        assert!(!store.union(n(1), n(0)), "already merged");
        assert!(store.union(n(1), n(2)));
        assert!(store.same_class(n(0), n(2)), "transitivity");
        assert_eq!(store.merge_count(), 2);
    }

    #[test]
    fn unions_are_sparse_friendly() {
        let mut store = NecStore::new();
        store.union(n(100), n(5));
        assert!(store.same_class(n(5), n(100)));
        assert!(!store.same_class(n(5), n(99)));
    }

    #[test]
    fn classes_of_groups_correctly() {
        let mut store = NecStore::new();
        store.union(n(0), n(2));
        store.union(n(3), n(4));
        let classes = store.classes_of([n(0), n(1), n(2), n(3), n(4)]);
        assert_eq!(classes.len(), 3);
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        // duplicates do not inflate classes
        let classes = store.classes_of([n(0), n(0), n(2)]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 2);
    }

    #[test]
    fn exact_state_round_trips() {
        let mut store = NecStore::new();
        store.union(n(0), n(4));
        store.union(n(4), n(2));
        store.union(n(7), n(9));
        // compress some paths so parent/rank carry non-trivial structure
        store.find(n(2));
        let mut buf = Vec::new();
        store.encode_state(&mut buf);
        let mut r = Reader::new(&buf);
        let decoded = NecStore::decode_state(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded, store, "representation-exact round trip");
        assert_eq!(decoded.merge_count(), store.merge_count());
        assert_eq!(decoded.canonical_snapshot(), store.canonical_snapshot());
    }

    #[test]
    fn decode_rejects_out_of_range_parents() {
        let mut buf = Vec::new();
        serial::put_u32(&mut buf, 2); // two ids …
        serial::put_u32(&mut buf, 0);
        serial::put_u32(&mut buf, 5); // … but a parent pointing at id 5
        serial::put_u8(&mut buf, 0);
        serial::put_u8(&mut buf, 0);
        serial::put_u64(&mut buf, 0);
        let err = NecStore::decode_state(&mut Reader::new(&buf)).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn snapshot_equality_tracks_partitions() {
        let mut a = NecStore::new();
        let mut b = NecStore::new();
        a.union(n(0), n(1));
        b.union(n(0), n(1));
        assert_eq!(a.canonical_snapshot(), b.canonical_snapshot());
        b.union(n(2), n(3));
        assert_ne!(a.canonical_snapshot(), b.canonical_snapshot());
    }

    #[test]
    fn find_compresses_paths() {
        let mut store = NecStore::new();
        store.union(n(0), n(1));
        store.union(n(1), n(2));
        store.union(n(2), n(3));
        let root = store.find(n(3));
        for i in 0..4 {
            assert_eq!(store.find(n(i)), root);
        }
    }
}
