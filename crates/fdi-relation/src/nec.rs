//! Null-equality constraints (NECs) as a union–find over null ids.
//!
//! Definition 1 of the paper: *a null-equality constraint is a statement
//! to the effect that two null values are equal — they must take the same
//! value in any substitution.* NECs partition the nulls of an instance
//! into equivalence classes; the NS-rules of §6 introduce new NECs when
//! two nulls are forced to agree, and every satisfiability convention in
//! Theorems 2–3 consults these classes when comparing nulls.
//!
//! Implementation: a standard union–find with union by rank and path
//! compression, growing on demand as null ids are allocated.

use crate::value::NullId;
use std::collections::HashMap;

/// Union–find over null equivalence classes.
#[derive(Debug, Clone, Default)]
pub struct NecStore {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of union operations performed (distinct-class merges).
    merges: usize,
}

impl NecStore {
    /// An empty store.
    pub fn new() -> NecStore {
        NecStore::default()
    }

    fn ensure(&mut self, id: NullId) {
        let need = id.index() + 1;
        while self.parent.len() < need {
            self.parent.push(self.parent.len() as u32);
            self.rank.push(0);
        }
    }

    /// Representative of `id`'s class, with path compression.
    pub fn find(&mut self, id: NullId) -> NullId {
        self.ensure(id);
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = id.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        NullId(root)
    }

    /// Representative without mutation (no compression); ids never seen
    /// are their own class.
    pub fn find_readonly(&self, id: NullId) -> NullId {
        let mut cur = id.0;
        while (cur as usize) < self.parent.len() && self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
        }
        NullId(cur)
    }

    /// Introduces the NEC `a := b`. Returns `true` when the two classes
    /// were distinct (knowledge increased).
    pub fn union(&mut self, a: NullId, b: NullId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra.index()] >= self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.index()] = hi.0;
        if self.rank[hi.index()] == self.rank[lo.index()] {
            self.rank[hi.index()] += 1;
        }
        self.merges += 1;
        true
    }

    /// Do `a` and `b` denote the same unknown value?
    pub fn same_class(&self, a: NullId, b: NullId) -> bool {
        a == b || self.find_readonly(a) == self.find_readonly(b)
    }

    /// Number of distinct-class merges performed so far.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// Groups the given null ids into their equivalence classes.
    pub fn classes_of<I: IntoIterator<Item = NullId>>(&self, ids: I) -> Vec<Vec<NullId>> {
        let mut groups: HashMap<NullId, Vec<NullId>> = HashMap::new();
        let mut order: Vec<NullId> = Vec::new();
        for id in ids {
            let root = self.find_readonly(id);
            let entry = groups.entry(root).or_default();
            if entry.is_empty() {
                order.push(root);
            }
            if !entry.contains(&id) {
                entry.push(id);
            }
        }
        order.into_iter().map(|r| groups.remove(&r).unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NullId {
        NullId(i)
    }

    #[test]
    fn fresh_ids_are_their_own_class() {
        let store = NecStore::new();
        assert!(store.same_class(n(3), n(3)));
        assert!(!store.same_class(n(3), n(4)));
        assert_eq!(store.find_readonly(n(9)), n(9));
    }

    #[test]
    fn union_merges_classes() {
        let mut store = NecStore::new();
        assert!(store.union(n(0), n(1)));
        assert!(store.same_class(n(0), n(1)));
        assert!(!store.union(n(1), n(0)), "already merged");
        assert!(store.union(n(1), n(2)));
        assert!(store.same_class(n(0), n(2)), "transitivity");
        assert_eq!(store.merge_count(), 2);
    }

    #[test]
    fn unions_are_sparse_friendly() {
        let mut store = NecStore::new();
        store.union(n(100), n(5));
        assert!(store.same_class(n(5), n(100)));
        assert!(!store.same_class(n(5), n(99)));
    }

    #[test]
    fn classes_of_groups_correctly() {
        let mut store = NecStore::new();
        store.union(n(0), n(2));
        store.union(n(3), n(4));
        let classes = store.classes_of([n(0), n(1), n(2), n(3), n(4)]);
        assert_eq!(classes.len(), 3);
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        // duplicates do not inflate classes
        let classes = store.classes_of([n(0), n(0), n(2)]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].len(), 2);
    }

    #[test]
    fn find_compresses_paths() {
        let mut store = NecStore::new();
        store.union(n(0), n(1));
        store.union(n(1), n(2));
        store.union(n(2), n(3));
        let root = store.find(n(3));
        for i in 0..4 {
            assert_eq!(store.find(n(i)), root);
        }
    }
}
