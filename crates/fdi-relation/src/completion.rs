//! Completion enumeration — the sets `AP(t, R)` and `AP(r, R)` of §4.
//!
//! A *completion* substitutes every null in scope with a constant from
//! the attribute's (finite) domain, giving NEC-equivalent nulls the same
//! constant. The paper: "The set of all completions AP of a tuple t on a
//! set of attributes R is well-defined … Similarly, we define AP(r, R),
//! the set of all completions of r projected on R." The footnote explains
//! the name: the completions of `t` are exactly the total tuples that `t`
//! approximates in the tuple lattice.
//!
//! [`CompletionSpace`] materializes the choice structure once — one slot
//! per NEC class in scope, with candidate symbols from the intersection
//! of the domains the class touches — and then iterates the Cartesian
//! product. [`CompletionSpace::count`] reports the product size without
//! enumeration, so callers can bound work before iterating (the paper
//! itself stresses that this evaluation rule has "unacceptable
//! complexity" — measured in experiment E13).

use crate::attrs::AttrSet;
use crate::error::RelationError;
use crate::instance::Instance;
use crate::rowid::RowId;
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::{NullId, Value};

/// One NEC class with its occurrences and candidate substitutions.
#[derive(Debug, Clone)]
struct ClassSlot {
    /// Occurrences as (row, attr) positions; rows identify instance rows.
    positions: Vec<(RowId, crate::attrs::AttrId)>,
    /// Candidate constants: the intersection of the domains of every
    /// attribute the class occurs under, sorted.
    candidates: Vec<Symbol>,
}

/// The completion space of a set of rows of an instance, restricted to a
/// scope of attributes.
#[derive(Debug, Clone)]
pub struct CompletionSpace<'a> {
    instance: &'a Instance,
    rows: Vec<RowId>,
    scope: AttrSet,
    classes: Vec<ClassSlot>,
}

impl<'a> CompletionSpace<'a> {
    /// The completion space `AP(r, scope)` over all rows of `instance`.
    pub fn for_instance(instance: &'a Instance, scope: AttrSet) -> Result<Self, RelationError> {
        Self::for_rows(instance, instance.row_ids().collect(), scope)
    }

    /// The completion space `AP(t, scope)` of a single row.
    pub fn for_tuple(
        instance: &'a Instance,
        row: RowId,
        scope: AttrSet,
    ) -> Result<Self, RelationError> {
        Self::for_rows(instance, vec![row], scope)
    }

    /// Completion space over an arbitrary set of rows.
    pub fn for_rows(
        instance: &'a Instance,
        rows: Vec<RowId>,
        scope: AttrSet,
    ) -> Result<Self, RelationError> {
        let mut classes: Vec<(NullId, ClassSlot)> = Vec::new();
        for &row in &rows {
            for (attr, null) in instance.tuple(row).nulls_on(scope) {
                let domain = instance.domain(attr);
                if !domain.is_finite() {
                    return Err(RelationError::UnboundedDomain {
                        attribute: instance.schema().attr_name(attr).to_string(),
                    });
                }
                let root = instance.necs().find_readonly(null);
                match classes.iter_mut().find(|(r, _)| *r == root) {
                    Some((_, slot)) => {
                        slot.positions.push((row, attr));
                        slot.candidates.retain(|s| domain.contains(*s));
                    }
                    None => classes.push((
                        root,
                        ClassSlot {
                            positions: vec![(row, attr)],
                            candidates: domain.members().to_vec(),
                        },
                    )),
                }
            }
        }
        Ok(CompletionSpace {
            instance,
            rows,
            scope,
            classes: classes.into_iter().map(|(_, slot)| slot).collect(),
        })
    }

    /// Number of null classes in scope.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The number of completions (Cartesian product of candidate counts),
    /// saturating at `u128::MAX`. Zero means the space is inconsistent —
    /// some class has no candidate value (empty domain intersection).
    pub fn count(&self) -> u128 {
        let mut total: u128 = 1;
        for slot in &self.classes {
            total = total.saturating_mul(slot.candidates.len() as u128);
            if total == 0 {
                return 0;
            }
        }
        total
    }

    /// Errors when [`CompletionSpace::count`] exceeds `limit`.
    pub fn check_budget(&self, limit: u128) -> Result<(), RelationError> {
        let count = self.count();
        if count > limit {
            Err(RelationError::TooManyCompletions { count, limit })
        } else {
            Ok(())
        }
    }

    /// Iterates over all completions; each item maps the selected rows to
    /// completed tuples (attributes outside `scope` are untouched).
    ///
    /// Rows appear in the order given to the constructor.
    pub fn iter(&self) -> CompletionIter<'_, 'a> {
        CompletionIter {
            space: self,
            choice: vec![0; self.classes.len()],
            done: self.count() == 0,
        }
    }

    /// Convenience: all completions of a single-row space as tuples.
    ///
    /// # Panics
    /// Panics if the space was not built over exactly one row.
    pub fn tuples(&self) -> Vec<Tuple> {
        assert_eq!(self.rows.len(), 1, "tuples() requires a single-row space");
        self.iter()
            .map(|mut rows| rows.pop().expect("one row"))
            .collect()
    }

    fn materialize(&self, choice: &[usize]) -> Vec<Tuple> {
        let mut rows: Vec<Tuple> = self
            .rows
            .iter()
            .map(|&r| self.instance.tuple(r).clone())
            .collect();
        for (slot, &pick) in self.classes.iter().zip(choice) {
            let symbol = slot.candidates[pick];
            for &(row, attr) in &slot.positions {
                let pos = self
                    .rows
                    .iter()
                    .position(|r| *r == row)
                    .expect("row in space");
                rows[pos].set(attr, Value::Const(symbol));
            }
        }
        rows
    }

    /// The scope of the space.
    pub fn scope(&self) -> AttrSet {
        self.scope
    }
}

/// Iterator over the completions of a [`CompletionSpace`].
#[derive(Debug)]
pub struct CompletionIter<'s, 'a> {
    space: &'s CompletionSpace<'a>,
    choice: Vec<usize>,
    done: bool,
}

impl Iterator for CompletionIter<'_, '_> {
    type Item = Vec<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let result = self.space.materialize(&self.choice);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == self.choice.len() {
                self.done = true;
                break;
            }
            self.choice[i] += 1;
            if self.choice[i] < self.space.classes[i].candidates.len() {
                break;
            }
            self.choice[i] = 0;
            i += 1;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrId;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn schema_abc() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("A", ["a1", "a2"])
            .attribute("B", ["b1", "b2", "b3"])
            .attribute("C", ["c1", "c2"])
            .build()
            .unwrap()
    }

    fn all(r: &Instance) -> AttrSet {
        r.schema().all_attrs()
    }

    #[test]
    fn complete_tuples_have_one_completion() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1").unwrap();
        let space = CompletionSpace::for_tuple(&r, r.nth_row(0), all(&r)).unwrap();
        assert_eq!(space.count(), 1);
        assert_eq!(space.tuples().len(), 1);
        assert_eq!(space.tuples()[0], *r.tuple(r.nth_row(0)));
    }

    #[test]
    fn single_null_enumerates_its_domain() {
        let r = Instance::parse(schema_abc(), "a1 - c1").unwrap();
        let space = CompletionSpace::for_tuple(&r, r.nth_row(0), all(&r)).unwrap();
        assert_eq!(space.count(), 3, "dom(B) has 3 values");
        let tuples = space.tuples();
        assert_eq!(tuples.len(), 3);
        for t in &tuples {
            assert!(t.is_total_on(all(&r)));
            assert!(r.tuple(r.nth_row(0)).approximates(t));
        }
        // all distinct
        let set: std::collections::HashSet<_> = tuples.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn independent_nulls_multiply() {
        let r = Instance::parse(schema_abc(), "- - c1").unwrap();
        let space = CompletionSpace::for_tuple(&r, r.nth_row(0), all(&r)).unwrap();
        assert_eq!(space.count(), 2 * 3);
        assert_eq!(space.iter().count(), 6);
    }

    #[test]
    fn scope_restricts_enumeration() {
        let r = Instance::parse(schema_abc(), "- - c1").unwrap();
        let scope = AttrSet::singleton(AttrId(0));
        let space = CompletionSpace::for_tuple(&r, r.nth_row(0), scope).unwrap();
        assert_eq!(space.count(), 2, "only the A-null is in scope");
        for t in space.tuples() {
            assert!(t.get(AttrId(1)).is_null(), "B-null untouched");
        }
    }

    #[test]
    fn nec_classes_covary() {
        let r = Instance::parse(schema_abc(), "a1 ?x c1\na2 ?x c2").unwrap();
        let space = CompletionSpace::for_instance(&r, all(&r)).unwrap();
        assert_eq!(space.class_count(), 1);
        assert_eq!(space.count(), 3, "one shared class over dom(B)");
        for rows in space.iter() {
            assert_eq!(rows[0].get(AttrId(1)), rows[1].get(AttrId(1)));
        }
    }

    #[test]
    fn cross_attribute_classes_use_domain_intersection() {
        // B's domain is {b1,b2,b3}, C's is {c1,c2}: a class spanning both
        // has an empty intersection, hence zero completions.
        let schema = schema_abc();
        let mut r = Instance::parse(schema, "a1 ?x c1").unwrap();
        let x = r.mark("x").unwrap();
        let c = r.fresh_null();
        let a1 = r.intern_constant(AttrId(0), "a1").unwrap();
        r.add_tuple(Tuple::new(vec![
            Value::Const(a1),
            Value::Null(x),
            Value::Null(c),
        ]))
        .unwrap();
        r.add_nec(x, c);
        let space = CompletionSpace::for_instance(&r, r.schema().all_attrs()).unwrap();
        assert_eq!(space.count(), 0, "empty domain intersection");
        assert_eq!(space.iter().count(), 0);
    }

    #[test]
    fn shared_domains_intersect_properly() {
        let schema = Schema::builder("R")
            .attribute("A", ["v1", "v2"])
            .attribute("B", ["v2", "v3"])
            .build()
            .unwrap();
        let mut r = Instance::parse(schema, "?x v2").unwrap();
        let x = r.mark("x").unwrap();
        let b = r.fresh_null();
        r.add_tuple(Tuple::new(vec![Value::Null(x), Value::Null(b)]))
            .unwrap();
        r.add_nec(x, b);
        let space = CompletionSpace::for_instance(&r, r.schema().all_attrs()).unwrap();
        // intersection {v2} → exactly one choice for the shared class
        assert_eq!(space.count(), 1);
        let rows = space.iter().next().unwrap();
        assert_eq!(rows[1].get(AttrId(0)), rows[1].get(AttrId(1)));
    }

    #[test]
    fn unbounded_domains_error() {
        let schema = Schema::builder("R")
            .attribute_unbounded("name")
            .attribute("status", ["m", "s"])
            .build()
            .unwrap();
        let mut r = Instance::new(schema);
        r.add_row(&["John", "-"]).unwrap();
        r.add_row(&["-", "m"]).unwrap();
        // null under the unbounded attribute → error
        let err = CompletionSpace::for_instance(&r, r.schema().all_attrs()).unwrap_err();
        assert!(matches!(err, RelationError::UnboundedDomain { .. }));
        // restricting scope to the finite attribute works
        let scope = AttrSet::singleton(AttrId(1));
        assert!(CompletionSpace::for_instance(&r, scope).is_ok());
    }

    #[test]
    fn budget_check() {
        let r = Instance::parse(schema_abc(), "- - -\n- - -").unwrap();
        let space = CompletionSpace::for_instance(&r, all(&r)).unwrap();
        assert_eq!(space.count(), (2 * 3 * 2u128).pow(2));
        assert!(space.check_budget(10).is_err());
        assert!(space.check_budget(1000).is_ok());
    }

    #[test]
    fn instance_completions_complete_every_row() {
        let r = Instance::parse(schema_abc(), "a1 - c1\n- b2 c2").unwrap();
        let space = CompletionSpace::for_instance(&r, all(&r)).unwrap();
        assert_eq!(space.count(), 6);
        let mut seen = 0;
        for rows in space.iter() {
            seen += 1;
            assert_eq!(rows.len(), 2);
            for (id, t) in r.row_ids().zip(rows.iter()) {
                assert!(t.is_total_on(all(&r)));
                assert!(r.tuple(id).approximates(t));
            }
        }
        assert_eq!(seen, 6);
    }
}
