//! Byte-level codec primitives for exact-state serialization.
//!
//! The durability layer (`fdi-store`) journals `Database` mutations and
//! replays them on recovery; its genesis/checkpoint records need an
//! **exact-state** snapshot of an [`crate::instance::Instance`] — not
//! merely a semantically equivalent one — so that replaying a journaled
//! op suffix on the decoded snapshot is bit-identical to having applied
//! the ops live (same null ids, same slot layout, same free list, same
//! union–find internals). This module provides the little-endian
//! primitives those encoders share; the state encoders themselves live
//! next to the private fields they serialize
//! ([`crate::instance::Instance::encode_state`],
//! [`crate::nec::NecStore::encode_state`]).
//!
//! Framing, checksumming, and corruption handling are deliberately *not*
//! here: they belong to the journal's record layer, which wraps these
//! payloads. A [`DecodeError`] therefore means a logically malformed
//! payload (truncated, out-of-range id, schema mismatch), not storage
//! corruption.

use std::fmt;

/// A decoding failure: the byte offset within the payload where it was
/// detected, and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the payload being decoded.
    pub offset: usize,
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decode error at payload byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DecodeError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a byte payload with typed, bounds-checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte has been consumed — a decoded value must
    /// account for its whole payload.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.err(format!("{} trailing bytes after value", self.remaining())))
        }
    }

    /// Builds a [`DecodeError`] at the current offset.
    pub fn err<S: Into<String>>(&self, message: S) -> DecodeError {
        DecodeError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(format!("need {n} bytes, {} remaining", self.remaining())));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.err(format!(
                "string length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "café");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "café");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_with_offset() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        buf.truncate(2);
        let mut r = Reader::new(&buf);
        let err = r.u32().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.message.contains("need 4"));
    }

    #[test]
    fn oversized_string_lengths_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000); // claims 1000 bytes, provides none
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn expect_end_catches_trailing_bytes() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
        r.u8().unwrap();
        r.expect_end().unwrap();
    }
}
