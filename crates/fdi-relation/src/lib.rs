//! # fdi-relation — a relational substrate with marked nulls
//!
//! Storage layer for the reproduction of *Vassiliou, "Functional
//! Dependencies and Incomplete Information", VLDB 1980*. Everything a
//! 1980 relational instance needs, built from scratch:
//!
//! * [`symbol`] — interned constant symbols;
//! * [`attrs`] — attribute ids and bitset attribute sets;
//! * [`value`] — values: constants, **marked nulls** (the paper's
//!   missing/unknown null), and the **nothing** element of the extended
//!   NS-rules;
//! * [`domain`] — finite, known domains (the paper's standing
//!   assumption), plus unbounded domains for classical algorithms;
//! * [`schema`] — relation schemes;
//! * [`nec`] — null-equality constraints as a union–find (Definition 1);
//! * [`rowid`] — stable row identity: the [`RowId`] slot handle that
//!   survives deletes unchanged (no positional renumbering);
//! * [`mod@tuple`] / [`instance`] — tuples and relation instances stored
//!   in a slot arena (`O(1)` tombstoning deletes, explicit
//!   [`Instance::compact`](instance::Instance::compact)), with a
//!   figure-style text format and ASCII rendering;
//! * [`completion`] — the completion sets `AP(t, R)` / `AP(r, R)` of §4,
//!   with counting and budgeted enumeration;
//! * [`lattice`] — the §2 approximation ordering lifted to instances;
//! * [`serial`] — byte-codec primitives for the **exact-state**
//!   serialization ([`Instance::encode_state`](instance::Instance::encode_state))
//!   that the `fdi-store` durability layer snapshots and replays against.
//!
//! ## Example
//!
//! ```
//! use fdi_relation::schema::Schema;
//! use fdi_relation::instance::Instance;
//! use fdi_relation::completion::CompletionSpace;
//!
//! let schema = Schema::builder("R")
//!     .attribute("A", ["a1", "a2"])
//!     .attribute("B", ["b1", "b2", "b3"])
//!     .build()
//!     .unwrap();
//! // `-` is an anonymous null; `?x` a marked null shared between rows.
//! let r = Instance::parse(schema, "a1 ?x\na2 ?x").unwrap();
//! let space = CompletionSpace::for_instance(&r, r.schema().all_attrs()).unwrap();
//! assert_eq!(space.count(), 3); // the shared null ranges over dom(B)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod attrs;
pub mod completion;
pub mod domain;
pub mod error;
pub mod instance;
pub mod lattice;
pub mod nec;
pub mod rowid;
pub mod schema;
pub mod serial;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use attrs::{AttrId, AttrSet};
pub use completion::CompletionSpace;
pub use domain::Domain;
pub use error::RelationError;
pub use instance::{CanonValue, CanonicalInstance, Instance};
pub use nec::{NecSnapshot, NecStore};
pub use rowid::{RowId, RowIdShard};
pub use schema::{AttrDef, DomainSpec, Schema, SchemaBuilder};
pub use serial::DecodeError;
pub use symbol::{Symbol, SymbolTable};
pub use tuple::Tuple;
pub use value::{NullId, Value};
