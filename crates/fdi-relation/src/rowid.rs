//! Stable row identity: the [`RowId`] handle.
//!
//! Rows of an [`Instance`](crate::instance::Instance) are addressed by
//! an opaque slot handle instead of a position in a dense vector.
//! Deleting a row tombstones its slot and **never renumbers the
//! survivors**, so a `RowId` held by an index, an occurrence list, or a
//! worklist stays valid until that exact row is removed. This is what
//! makes `O(1)` deletes possible end-to-end: no layer above the storage
//! has to run a survivor id-shift pass.
//!
//! A `RowId` is deliberately *not* an integer in the API sense: it
//! supports no arithmetic, so positional habits (`row - 1`,
//! `row < len`) are compile errors. The one escape hatch is
//! [`RowId::index`], which exposes the underlying slot position for
//! dense per-slot side tables (`Vec<T>` indexed by slot) — an *address*,
//! not an ordinal: slot indices are stable but not contiguous once rows
//! have been deleted.

use std::fmt;

/// A stable handle to one row slot of an instance.
///
/// Equality and ordering follow the slot position; live rows iterate in
/// ascending `RowId` order, which coincides with insertion order (and
/// with the displayed/serialized order — see
/// [`Instance::iter_live`](crate::instance::Instance::iter_live)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The underlying slot position, for dense per-slot side tables.
    ///
    /// Slot indices are stable (they never shift) but not contiguous
    /// once rows have been deleted; use
    /// [`Instance::slot_bound`](crate::instance::Instance::slot_bound)
    /// to size a side table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A contiguous, half-open range of row slots `[start, end)` — the unit
/// of parallel work handed to the `fdi-exec` executor.
///
/// Produced by
/// [`Instance::row_id_shards`](crate::instance::Instance::row_id_shards),
/// which partitions the slot space so that concatenating the shards in
/// order visits every live row exactly once, in ascending slot order.
/// Because slot ids survive deletes unchanged (tombstoning, no
/// renumbering), a shard remains a valid description of "these rows"
/// across arbitrary churn; only an explicit
/// [`Instance::compact`](crate::instance::Instance::compact) moves rows
/// between shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowIdShard {
    /// First slot index of the shard (inclusive).
    pub(crate) start: u32,
    /// One past the last slot index (exclusive).
    pub(crate) end: u32,
}

impl RowIdShard {
    /// The shard covering `[start, end)` of the slot space.
    pub fn new(start: u32, end: u32) -> RowIdShard {
        RowIdShard {
            start,
            end: end.max(start),
        }
    }

    /// Number of slots (live or tombstoned) the shard spans.
    pub fn slot_len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// `true` iff the shard spans no slots at all. (A non-empty slot
    /// range may still contain zero *live* rows — an all-tombstone
    /// shard.)
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Does the shard's slot range contain `row`?
    pub fn contains(&self, row: RowId) -> bool {
        (self.start..self.end).contains(&row.0)
    }
}

impl fmt::Display for RowIdShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}
