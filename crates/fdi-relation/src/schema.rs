//! Relation schemes: attribute names and domain specifications.
//!
//! A [`Schema`] is pure metadata — names and string-level domain specs.
//! Operational structures (interned symbols, symbol-level domains, tuples)
//! live in [`crate::instance::Instance`], so two instances of the same
//! schema are fully independent.

use crate::attrs::{AttrId, AttrSet, ATTR_LIMIT};
use crate::error::RelationError;
use std::fmt;
use std::sync::Arc;

/// String-level domain specification, resolved to symbol ids when an
/// instance is created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainSpec {
    /// A finite, known domain (the paper's standing assumption).
    Finite(Vec<String>),
    /// An unbounded domain (classical algorithms only).
    Unbounded,
}

impl DomainSpec {
    /// Finite domain from anything string-like.
    pub fn finite<S: Into<String>, I: IntoIterator<Item = S>>(values: I) -> DomainSpec {
        DomainSpec::Finite(values.into_iter().map(Into::into).collect())
    }

    /// Size of the domain, `None` when unbounded.
    pub fn size(&self) -> Option<usize> {
        match self {
            DomainSpec::Finite(v) => Some(v.len()),
            DomainSpec::Unbounded => None,
        }
    }
}

/// One attribute: a name and its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (e.g. `E#`, `SL`).
    pub name: String,
    /// Domain specification.
    pub domain: DomainSpec,
}

/// A relation scheme `R(A₁, …, Aₚ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Starts building a schema named `name`.
    pub fn builder<S: Into<String>>(name: S) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// A schema where every attribute has the same domain size, with
    /// generated value names `<attr>_0 … <attr>_{k-1}`. Convenient for
    /// workload generation and tests.
    pub fn uniform<S: Into<String>>(
        name: S,
        attr_names: &[&str],
        domain_size: usize,
    ) -> Result<Arc<Schema>, RelationError> {
        let mut b = Schema::builder(name);
        for attr in attr_names {
            let values: Vec<String> = (0..domain_size).map(|i| format!("{attr}_{i}")).collect();
            b = b.attribute(*attr, values);
        }
        b.build()
    }

    /// The scheme's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute definitions, in declaration order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// The definition of one attribute.
    pub fn attr(&self, id: AttrId) -> &AttrDef {
        &self.attrs[id.index()]
    }

    /// The name of one attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Looks an attribute up by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, RelationError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u16))
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// The set of all attributes.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::first_n(self.arity())
    }

    /// Builds an [`AttrSet`] from attribute names.
    pub fn attr_set(&self, names: &[&str]) -> Result<AttrSet, RelationError> {
        let mut s = AttrSet::EMPTY;
        for n in names {
            s = s.with(self.attr_id(n)?);
        }
        Ok(s)
    }

    /// Renders an attribute set with names, e.g. `E#,SL` (single-letter
    /// names concatenate, as in the paper's `AB → C`).
    pub fn render_attrs(&self, set: AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|a| self.attr_name(a)).collect();
        if names.iter().all(|n| n.chars().count() == 1) {
            names.concat()
        } else {
            names.join(",")
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name)?;
        }
        write!(f, ")")
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<AttrDef>,
}

impl SchemaBuilder {
    /// Adds an attribute with a finite domain.
    #[must_use]
    pub fn attribute<S, V, I>(mut self, name: S, values: I) -> SchemaBuilder
    where
        S: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = V>,
    {
        self.attrs.push(AttrDef {
            name: name.into(),
            domain: DomainSpec::finite(values),
        });
        self
    }

    /// Adds an attribute with an unbounded domain.
    #[must_use]
    pub fn attribute_unbounded<S: Into<String>>(mut self, name: S) -> SchemaBuilder {
        self.attrs.push(AttrDef {
            name: name.into(),
            domain: DomainSpec::Unbounded,
        });
        self
    }

    /// Finalizes the schema.
    ///
    /// Fails when more than [`ATTR_LIMIT`] attributes are declared or an
    /// attribute name repeats.
    pub fn build(self) -> Result<Arc<Schema>, RelationError> {
        if self.attrs.len() > ATTR_LIMIT {
            return Err(RelationError::TooManyAttributes {
                requested: self.attrs.len(),
                limit: ATTR_LIMIT,
            });
        }
        for (i, a) in self.attrs.iter().enumerate() {
            if self.attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::Parse {
                    line: 0,
                    message: format!("duplicate attribute name {:?}", a.name),
                });
            }
        }
        Ok(Arc::new(Schema {
            name: self.name,
            attrs: self.attrs,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("E#", ["e1", "e2", "e3"])
            .attribute("SL", ["10K", "15K", "20K"])
            .attribute("D#", ["d1", "d2"])
            .attribute("CT", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_and_rendering() {
        let s = paper_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_id("SL").unwrap(), AttrId(1));
        assert!(s.attr_id("XX").is_err());
        assert_eq!(s.attr_name(AttrId(3)), "CT");
        assert_eq!(s.to_string(), "R(E#, SL, D#, CT)");
        let set = s.attr_set(&["SL", "D#"]).unwrap();
        assert_eq!(s.render_attrs(set), "SL,D#");
    }

    #[test]
    fn single_letter_attrs_concatenate() {
        let s = Schema::uniform("R", &["A", "B", "C"], 2).unwrap();
        let set = s.attr_set(&["A", "C"]).unwrap();
        assert_eq!(s.render_attrs(set), "AC");
    }

    #[test]
    fn uniform_generates_domains() {
        let s = Schema::uniform("R", &["A", "B"], 3).unwrap();
        assert_eq!(s.attr(AttrId(0)).domain.size(), Some(3));
        match &s.attr(AttrId(1)).domain {
            DomainSpec::Finite(v) => assert_eq!(v[2], "B_2"),
            DomainSpec::Unbounded => panic!("expected finite"),
        }
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let r = Schema::builder("R")
            .attribute("A", ["x"])
            .attribute("A", ["y"])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn all_attrs_covers_arity() {
        let s = paper_schema();
        assert_eq!(s.all_attrs().len(), 4);
    }

    #[test]
    fn unbounded_attributes_supported() {
        let s = Schema::builder("R")
            .attribute_unbounded("name")
            .attribute("status", ["married", "single"])
            .build()
            .unwrap();
        assert_eq!(s.attr(AttrId(0)).domain.size(), None);
    }
}
