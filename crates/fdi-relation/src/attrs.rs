//! Attribute identifiers and attribute sets.
//!
//! A relation scheme `R(A, B, C, …)` names its attributes; functional
//! dependencies relate *sets* of attributes. Attribute sets are 64-bit
//! bitsets — the same representation as `fdi_logic::VarSet`, kept
//! structurally separate so that the FD ↔ implicational-statement bridge
//! in `fdi-core` is an explicit, tested conversion rather than a type pun.

use std::fmt;

/// Index of an attribute within its [`crate::schema::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr{}", self.0)
    }
}

/// Maximum number of attributes per relation scheme.
pub const ATTR_LIMIT: usize = 64;

/// A set of attributes, as a 64-bit bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(pub u64);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Singleton set.
    #[inline]
    pub fn singleton(a: AttrId) -> AttrSet {
        debug_assert!(a.index() < ATTR_LIMIT);
        AttrSet(1u64 << a.0)
    }

    /// The set of the first `n` attributes.
    #[inline]
    pub fn first_n(n: usize) -> AttrSet {
        assert!(n <= ATTR_LIMIT);
        if n == ATTR_LIMIT {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Returns `true` iff empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Cardinality.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership.
    #[inline]
    pub fn contains(self, a: AttrId) -> bool {
        debug_assert!(a.index() < ATTR_LIMIT);
        self.0 & (1u64 << a.0) != 0
    }

    /// Insertion (persistent).
    #[inline]
    #[must_use]
    pub fn with(self, a: AttrId) -> AttrSet {
        debug_assert!(a.index() < ATTR_LIMIT);
        AttrSet(self.0 | (1u64 << a.0))
    }

    /// Removal (persistent).
    #[inline]
    #[must_use]
    pub fn without(self, a: AttrId) -> AttrSet {
        debug_assert!(a.index() < ATTR_LIMIT);
        AttrSet(self.0 & !(1u64 << a.0))
    }

    /// Union.
    #[inline]
    #[must_use]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Subset test.
    #[inline]
    pub fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Disjointness test.
    #[inline]
    pub fn is_disjoint(self, other: AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = AttrId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(AttrId(i as u16))
            }
        })
    }

    /// Iterates over all non-empty subsets of this set (exponential; used
    /// by key search and small-universe tests).
    pub fn subsets(self) -> impl Iterator<Item = AttrSet> {
        // Standard submask enumeration: iterate s = (s - 1) & mask.
        let mask = self.0;
        let mut current = mask;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let result = AttrSet(current);
            if current == 0 {
                done = true;
            } else {
                current = (current - 1) & mask;
            }
            if result.is_empty() {
                None
            } else {
                Some(result)
            }
        })
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut s = AttrSet::EMPTY;
        for a in iter {
            s = s.with(a);
        }
        s
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> AttrSet {
        ids.iter().map(|i| AttrId(*i)).collect()
    }

    #[test]
    fn algebra() {
        let s = set(&[0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(AttrId(2)));
        assert!(!s.contains(AttrId(1)));
        assert_eq!(s.without(AttrId(2)), set(&[0, 5]));
        assert_eq!(s.union(set(&[1])), set(&[0, 1, 2, 5]));
        assert_eq!(s.intersect(set(&[2, 5, 9])), set(&[2, 5]));
        assert_eq!(s.difference(set(&[0])), set(&[2, 5]));
        assert!(set(&[0]).is_subset(s));
        assert!(s.is_disjoint(set(&[1, 3])));
    }

    #[test]
    fn iteration_order() {
        let ids: Vec<u16> = set(&[9, 1, 4]).iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![1, 4, 9]);
    }

    #[test]
    fn subsets_enumerates_all_nonempty_submasks() {
        let s = set(&[0, 1, 3]);
        let subs: Vec<AttrSet> = s.subsets().collect();
        assert_eq!(subs.len(), 7); // 2^3 - 1 non-empty subsets
        assert!(subs.contains(&set(&[0])));
        assert!(subs.contains(&set(&[1, 3])));
        assert!(subs.contains(&s));
        assert!(!subs.contains(&AttrSet::EMPTY));
        // all distinct
        let uniq: std::collections::HashSet<_> = subs.iter().collect();
        assert_eq!(uniq.len(), 7);
    }

    #[test]
    fn subsets_of_empty_is_empty() {
        assert_eq!(AttrSet::EMPTY.subsets().count(), 0);
    }

    #[test]
    fn first_n() {
        assert_eq!(AttrSet::first_n(4), set(&[0, 1, 2, 3]));
        assert_eq!(AttrSet::first_n(0), AttrSet::EMPTY);
    }

    #[test]
    fn display_lists_indices() {
        assert_eq!(set(&[0, 3]).to_string(), "{0,3}");
    }
}
