//! Interned constant symbols.
//!
//! Domain values ("a1", "Smith", "married", …) are interned once into a
//! [`SymbolTable`] and referenced by dense `u32` ids everywhere else, so
//! tuple comparison in the chase and in TEST-FDs is integer comparison,
//! never string comparison.

use std::collections::HashMap;
use std::fmt;

/// An interned constant symbol: an index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// String interner mapping constant text to dense [`Symbol`] ids.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Returns the symbol for `text`, interning it if new.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(sym) = self.index.get(text) {
            return *sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(text.to_string());
        self.index.insert(text.to_string(), sym);
        sym
    }

    /// Returns the symbol for `text` if already interned.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.index.get(text).copied()
    }

    /// The text of `sym`; a placeholder if the symbol is foreign.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.names
            .get(sym.index())
            .map(String::as_str)
            .unwrap_or("<unknown-symbol>")
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Interned texts in id order: `names().nth(i)` is the text of
    /// `Symbol(i)`. Re-interning the sequence into an empty table
    /// reproduces this table exactly — the property the exact-state
    /// serializer relies on.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.names.iter().map(String::as_str)
    }

    /// Returns `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a1");
        let b = t.intern("b1");
        assert_eq!(t.intern("a1"), a);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("married");
        assert_eq!(t.resolve(a), "married");
        assert_eq!(t.lookup("married"), Some(a));
        assert_eq!(t.lookup("single"), None);
    }

    #[test]
    fn foreign_symbols_resolve_to_placeholder() {
        let t = SymbolTable::new();
        assert_eq!(t.resolve(Symbol(99)), "<unknown-symbol>");
    }

    #[test]
    fn empty_checks() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        t.intern("x");
        assert!(!t.is_empty());
    }
}
