//! Projection and natural join over instances with nulls.
//!
//! §1 of the paper: "at the instance level, any multi-relation database
//! produced by a normalization process can be thought of as a collection
//! of **projections** of a universal relation", and §7 proposes a
//! *weaker* universal relation assumption in which the universal
//! instance carries nulls and its dependencies are only weakly
//! satisfied. This module supplies the algebra those discussions need:
//!
//! * [`project`] — projection onto an attribute set (optionally
//!   deduplicating, with marked nulls preserved so NEC structure
//!   survives the decomposition);
//! * [`natural_join`] — the natural join of two projections back into a
//!   wider scheme. Join matching is *definite*: two tuples join iff
//!   their shared attributes hold equal constants or NEC-equivalent
//!   nulls (a null does not join with a mere possibility — joining on a
//!   guess would manufacture information the database does not have).
//!
//! The round-trip `r ⊆ ⋈ᵢ π_{Rᵢ}(r)` (every original tuple is recovered
//! or approximated) is exercised by the universal-relation experiment
//! E18 and the property suite.

use crate::attrs::{AttrId, AttrSet};
use crate::error::RelationError;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// Builds the schema of a projection: the selected attributes, in
/// original order, with their domain specs.
pub fn project_schema(schema: &Schema, attrs: AttrSet) -> Result<Arc<Schema>, RelationError> {
    let mut builder = Schema::builder(format!("{}[{}]", schema.name(), schema.render_attrs(attrs)));
    for a in attrs.iter() {
        let def = schema.attr(a);
        builder = match &def.domain {
            crate::schema::DomainSpec::Finite(values) => {
                builder.attribute(def.name.clone(), values.clone())
            }
            crate::schema::DomainSpec::Unbounded => builder.attribute_unbounded(def.name.clone()),
        };
    }
    builder.build()
}

/// Projects `instance` onto `attrs`. Marked nulls keep their ids and the
/// NEC store is carried over, so null classes stay connected across the
/// components of a decomposition. When `dedup` is set, duplicate
/// projected tuples are removed (set semantics); two tuples are
/// duplicates only when they are *identical* (same constants, same null
/// ids) — possibly-equal tuples are both kept.
pub fn project(
    instance: &Instance,
    attrs: AttrSet,
    dedup: bool,
) -> Result<Instance, RelationError> {
    let schema = project_schema(instance.schema(), attrs)?;
    let mut out = Instance::new(schema);
    // Re-intern constants by text (symbol ids differ across instances).
    let mut seen: Vec<Tuple> = Vec::new();
    for t in instance.tuples() {
        let mut values = Vec::with_capacity(attrs.len());
        for (k, a) in attrs.iter().enumerate() {
            let v = match t.get(a) {
                Value::Const(s) => {
                    let text = instance.symbols().resolve(s).to_string();
                    Value::Const(out.intern_constant(AttrId(k as u16), &text)?)
                }
                Value::Null(n) => Value::Null(n),
                Value::Nothing => Value::Nothing,
            };
            values.push(v);
        }
        let tuple = Tuple::new(values);
        if dedup {
            if seen.contains(&tuple) {
                continue;
            }
            seen.push(tuple.clone());
        }
        out.add_tuple(tuple)?;
    }
    out.replace_necs(instance.necs().clone());
    Ok(out)
}

/// Do two values *definitely* agree for join purposes: equal constants,
/// or NEC-equivalent nulls?
fn join_agree(
    a: Value,
    b: Value,
    left: &Instance,
    right: &Instance,
    la: AttrId,
    ra: AttrId,
) -> bool {
    match (a, b) {
        (Value::Const(x), Value::Const(y)) => {
            // symbols are per-instance: compare by text
            left.symbols().resolve(x) == right.symbols().resolve(y)
        }
        (Value::Null(m), Value::Null(n)) => {
            // the NEC stores were inherited from a common ancestor in the
            // decomposition use-case; ids are globally meaningful there.
            left.necs().same_class(m, n) || right.necs().same_class(m, n)
        }
        _ => {
            let _ = (la, ra);
            false
        }
    }
}

/// Natural join of two instances on their shared attribute *names*.
///
/// The result schema has the left instance's attributes followed by the
/// right's non-shared attributes. Matching is definite (see the module
/// docs); the joined tuple takes the left value on shared attributes
/// (they agree by construction, up to null-class representatives).
pub fn natural_join(left: &Instance, right: &Instance) -> Result<Instance, RelationError> {
    let ls = left.schema();
    let rs = right.schema();
    // shared attribute name pairs, and right-only attributes
    let mut shared: Vec<(AttrId, AttrId)> = Vec::new();
    let mut right_only: Vec<AttrId> = Vec::new();
    for (j, def) in rs.attrs().iter().enumerate() {
        match ls.attr_id(&def.name) {
            Ok(i) => shared.push((i, AttrId(j as u16))),
            Err(_) => right_only.push(AttrId(j as u16)),
        }
    }
    // result schema
    let mut builder = Schema::builder(format!("{}⋈{}", ls.name(), rs.name()));
    for def in ls.attrs() {
        builder = match &def.domain {
            crate::schema::DomainSpec::Finite(values) => {
                builder.attribute(def.name.clone(), values.clone())
            }
            crate::schema::DomainSpec::Unbounded => builder.attribute_unbounded(def.name.clone()),
        };
    }
    for a in &right_only {
        let def = rs.attr(*a);
        builder = match &def.domain {
            crate::schema::DomainSpec::Finite(values) => {
                builder.attribute(def.name.clone(), values.clone())
            }
            crate::schema::DomainSpec::Unbounded => builder.attribute_unbounded(def.name.clone()),
        };
    }
    let schema = builder.build()?;
    let mut out = Instance::new(schema);
    let reintern = |out: &mut Instance,
                    col: usize,
                    v: Value,
                    src: &Instance|
     -> Result<Value, RelationError> {
        Ok(match v {
            Value::Const(s) => {
                let text = src.symbols().resolve(s).to_string();
                Value::Const(out.intern_constant(AttrId(col as u16), &text)?)
            }
            other => other,
        })
    };
    for lt in left.tuples() {
        'rights: for rt in right.tuples() {
            for (la, ra) in &shared {
                if !join_agree(lt.get(*la), rt.get(*ra), left, right, *la, *ra) {
                    continue 'rights;
                }
            }
            let mut values = Vec::with_capacity(ls.arity() + right_only.len());
            for (col, a) in ls.all_attrs().iter().enumerate() {
                values.push(reintern(&mut out, col, lt.get(a), left)?);
            }
            for (k, a) in right_only.iter().enumerate() {
                values.push(reintern(&mut out, ls.arity() + k, rt.get(*a), right)?);
            }
            out.add_tuple(Tuple::new(values))?;
        }
    }
    // Union the NEC knowledge of both sides.
    let mut necs = left.necs().clone();
    // merge right's classes into the union (walk every id the right
    // store has seen via its internal structure — re-deriving from the
    // tuples is sufficient and cheaper)
    for t in right.tuples() {
        for (_, n) in t.nulls_on(right.schema().all_attrs()) {
            let root = right.necs().find_readonly(n);
            necs.union(n, root);
        }
    }
    out.replace_necs(necs);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_abc() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("A", ["a1", "a2"])
            .attribute("B", ["b1", "b2"])
            .attribute("C", ["c1", "c2"])
            .build()
            .unwrap()
    }

    fn set(schema: &Schema, names: &[&str]) -> AttrSet {
        schema.attr_set(names).unwrap()
    }

    #[test]
    fn projection_keeps_values_and_order() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na2 - c2").unwrap();
        let p = project(&r, set(r.schema(), &["A", "C"]), false).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().attr_name(AttrId(0)), "A");
        assert_eq!(p.schema().attr_name(AttrId(1)), "C");
        assert_eq!(
            p.value(p.nth_row(1), AttrId(1)).render(p.symbols(), false),
            "c2"
        );
    }

    #[test]
    fn projection_dedup_is_exact_identity() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c1\na1 - c1\na1 - c1").unwrap();
        // projections on AC: (a1,c1) twice as constants, two *distinct*
        // null-free duplicates collapse; the null rows have distinct ids
        // ... on AC there are no nulls, so all four collapse to one.
        let p = project(&r, set(r.schema(), &["A", "C"]), true).unwrap();
        assert_eq!(p.len(), 1);
        // on AB the two marked-null rows are distinct ids → both kept
        let p2 = project(&r, set(r.schema(), &["A", "B"]), true).unwrap();
        assert_eq!(p2.len(), 4, "distinct null ids are not duplicates");
        // but a shared mark *is* a duplicate
        let r2 = Instance::parse(schema_abc(), "a1 ?x c1\na1 ?x c1").unwrap();
        let p3 = project(&r2, set(r2.schema(), &["A", "B"]), true).unwrap();
        assert_eq!(p3.len(), 1);
    }

    #[test]
    fn join_recovers_a_lossless_decomposition() {
        // B → C makes {AB, BC} lossless.
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na2 b1 c1\na2 b2 c2").unwrap();
        let ab = project(&r, set(r.schema(), &["A", "B"]), true).unwrap();
        let bc = project(&r, set(r.schema(), &["B", "C"]), true).unwrap();
        let joined = natural_join(&ab, &bc).unwrap();
        assert_eq!(joined.arity(), 3);
        assert_eq!(joined.len(), 3, "lossless: exactly the original tuples");
        let mut rows: Vec<String> = joined
            .tuples()
            .map(|t| {
                t.values()
                    .iter()
                    .map(|v| v.render(joined.symbols(), false))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        rows.sort();
        assert_eq!(rows, vec!["a1 b1 c1", "a2 b1 c1", "a2 b2 c2"]);
    }

    #[test]
    fn join_produces_spurious_tuples_for_lossy_decompositions() {
        // no FDs: {AB, BC} is lossy — b1 bridges a1/a2 with c1/c2.
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na2 b1 c2").unwrap();
        let ab = project(&r, set(r.schema(), &["A", "B"]), true).unwrap();
        let bc = project(&r, set(r.schema(), &["B", "C"]), true).unwrap();
        let joined = natural_join(&ab, &bc).unwrap();
        assert_eq!(joined.len(), 4, "2×2 bridge through b1");
    }

    #[test]
    fn nulls_join_only_within_their_class() {
        // the shared mark joins with itself, not with the other null
        let r = Instance::parse(schema_abc(), "a1 ?x c1\na2 ?x c2\na1 - c2").unwrap();
        let ab = project(&r, set(r.schema(), &["A", "B"]), true).unwrap();
        let bc = project(&r, set(r.schema(), &["B", "C"]), true).unwrap();
        let joined = natural_join(&ab, &bc).unwrap();
        // ?x rows join pairwise (2 left × 2 right), the anonymous null
        // joins only its own projection: 4 + 1
        assert_eq!(joined.len(), 5);
        // and no constant ever joined a null
        for t in joined.tuples() {
            let b = t.get(AttrId(1));
            assert!(b.is_null(), "B column is all-null here");
        }
    }

    #[test]
    fn join_on_disjoint_schemas_is_cartesian() {
        let left = Instance::parse(
            Schema::builder("L")
                .attribute("A", ["a1", "a2"])
                .build()
                .unwrap(),
            "a1\na2",
        )
        .unwrap();
        let right = Instance::parse(
            Schema::builder("Rt")
                .attribute("D", ["d1", "d2"])
                .build()
                .unwrap(),
            "d1\nd2",
        )
        .unwrap();
        let joined = natural_join(&left, &right).unwrap();
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.arity(), 2);
    }

    #[test]
    fn project_whole_schema_is_identity_up_to_canonical_form() {
        let r = Instance::parse(schema_abc(), "a1 ?x c1\na2 ?x -").unwrap();
        let p = project(&r, r.schema().all_attrs(), false).unwrap();
        assert_eq!(r.canonical_form(), p.canonical_form());
    }

    #[test]
    fn nothing_does_not_join() {
        let r = Instance::parse(schema_abc(), "a1 #! c1").unwrap();
        let ab = project(&r, set(r.schema(), &["A", "B"]), false).unwrap();
        let bc = project(&r, set(r.schema(), &["B", "C"]), false).unwrap();
        let joined = natural_join(&ab, &bc).unwrap();
        assert_eq!(joined.len(), 0, "the inconsistent element matches nothing");
    }
}
