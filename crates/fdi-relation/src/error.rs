//! Error types for the relational substrate.

use std::fmt;

/// Errors raised while building, parsing, or completing relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A row had the wrong number of values.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A constant is not a member of the attribute's finite domain.
    ConstantNotInDomain {
        /// The offending constant text.
        constant: String,
        /// The attribute whose domain was violated.
        attribute: String,
    },
    /// An operation required a finite domain but the attribute's domain
    /// is unbounded (completions cannot be enumerated).
    UnboundedDomain {
        /// The attribute with the unbounded domain.
        attribute: String,
    },
    /// A completion enumeration would exceed the configured work bound.
    TooManyCompletions {
        /// The number of completions that would be generated (saturated).
        count: u128,
        /// The configured bound.
        limit: u128,
    },
    /// Free-form parse error with a line number (1-based).
    Parse {
        /// 1-based line number within the parsed text.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Too many attributes for the bitset representation.
    TooManyAttributes {
        /// Number requested.
        requested: usize,
        /// The hard limit.
        limit: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownAttribute(name) => {
                write!(f, "unknown attribute {name:?}")
            }
            RelationError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row has {found} values but the schema has {expected} attributes"
                )
            }
            RelationError::ConstantNotInDomain {
                constant,
                attribute,
            } => {
                write!(
                    f,
                    "constant {constant:?} is not in the domain of attribute {attribute}"
                )
            }
            RelationError::UnboundedDomain { attribute } => {
                write!(
                    f,
                    "attribute {attribute} has an unbounded domain; completions cannot be enumerated"
                )
            }
            RelationError::TooManyCompletions { count, limit } => {
                write!(
                    f,
                    "completion enumeration of {count} tuples exceeds the limit {limit}"
                )
            }
            RelationError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            RelationError::TooManyAttributes { requested, limit } => {
                write!(
                    f,
                    "{requested} attributes requested but at most {limit} are supported"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = RelationError::ConstantNotInDomain {
            constant: "x9".into(),
            attribute: "SL".into(),
        };
        assert!(e.to_string().contains("x9"));
        assert!(e.to_string().contains("SL"));
        let e = RelationError::ArityMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
    }
}
