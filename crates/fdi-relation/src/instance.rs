//! Relation instances: tuples over a schema, with marked nulls and NECs.
//!
//! An [`Instance`] owns everything operational: the interned symbol
//! table, the symbol-level finite domains, the tuples, the null-equality
//! constraints, and the null-id allocator. Two instances of the same
//! [`Schema`] are completely independent.
//!
//! The text format used by [`Instance::parse`] mirrors the paper's
//! figures: one tuple per line, values separated by whitespace, `-` for
//! an anonymous null, `?name` for a *marked* null (two occurrences of the
//! same mark denote the same unknown value), `#!` for the `nothing`
//! element, and `#`-prefixed comment lines.

use crate::attrs::AttrId;
use crate::domain::Domain;
use crate::error::RelationError;
use crate::nec::NecStore;
use crate::schema::{DomainSpec, Schema};
use crate::symbol::{Symbol, SymbolTable};
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A relation instance `r` of a scheme `R`.
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    symbols: SymbolTable,
    domains: Vec<Domain>,
    tuples: Vec<Tuple>,
    necs: NecStore,
    next_null: u32,
    marks: HashMap<String, NullId>,
}

impl Instance {
    /// Creates an empty instance, interning all finite domain values.
    pub fn new(schema: Arc<Schema>) -> Instance {
        let mut symbols = SymbolTable::new();
        let domains = schema
            .attrs()
            .iter()
            .map(|attr| match &attr.domain {
                DomainSpec::Finite(values) => {
                    Domain::finite(values.iter().map(|v| symbols.intern(v)))
                }
                DomainSpec::Unbounded => Domain::Unbounded,
            })
            .collect();
        Instance {
            schema,
            symbols,
            domains,
            tuples: Vec::new(),
            necs: NecStore::new(),
            next_null: 0,
            marks: HashMap::new(),
        }
    }

    /// Parses an instance from text (see the module documentation for the
    /// format).
    pub fn parse(schema: Arc<Schema>, text: &str) -> Result<Instance, RelationError> {
        let mut instance = Instance::new(schema);
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            instance.add_row(&tokens).map_err(|e| match e {
                RelationError::Parse { message, .. } => RelationError::Parse {
                    line: lineno + 1,
                    message,
                },
                other => RelationError::Parse {
                    line: lineno + 1,
                    message: other.to_string(),
                },
            })?;
        }
        Ok(instance)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The interned symbols.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The symbol-level domain of attribute `a`.
    pub fn domain(&self, a: AttrId) -> &Domain {
        &self.domains[a.index()]
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` iff the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// One tuple.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn tuple(&self, row: usize) -> &Tuple {
        &self.tuples[row]
    }

    /// The value at (`row`, `attr`).
    pub fn value(&self, row: usize, attr: AttrId) -> Value {
        self.tuples[row].get(attr)
    }

    /// Overwrites the value at (`row`, `attr`) — used by the chase
    /// engines and the substitution rules.
    pub fn set_value(&mut self, row: usize, attr: AttrId, v: Value) {
        self.tuples[row].set(attr, v);
    }

    /// The NEC store.
    pub fn necs(&self) -> &NecStore {
        &self.necs
    }

    /// Mutable access to the NEC store.
    pub fn necs_mut(&mut self) -> &mut NecStore {
        &mut self.necs
    }

    /// Introduces the NEC `a := b`; returns `true` if knowledge increased.
    pub fn add_nec(&mut self, a: NullId, b: NullId) -> bool {
        self.necs.union(a, b)
    }

    /// Replaces the NEC store wholesale — used by chase engines when they
    /// materialize a new null-class structure (same-id nulls remain
    /// equivalent by definition regardless of the store).
    pub fn replace_necs(&mut self, necs: NecStore) {
        self.necs = necs;
    }

    /// Allocates a fresh null id.
    pub fn fresh_null(&mut self) -> NullId {
        let id = NullId(self.next_null);
        self.next_null += 1;
        id
    }

    /// Ensures future [`Instance::fresh_null`] calls return ids strictly
    /// greater than `id` — used after writing externally numbered nulls
    /// via [`Instance::set_value`].
    pub fn reserve_null_ids(&mut self, id: NullId) {
        if id.0 >= self.next_null {
            self.next_null = id.0 + 1;
        }
    }

    /// Interns a constant for attribute `a`, enforcing domain membership
    /// for finite domains.
    pub fn intern_constant(&mut self, a: AttrId, text: &str) -> Result<Symbol, RelationError> {
        match &self.domains[a.index()] {
            Domain::Finite(_) => match self.symbols.lookup(text) {
                Some(sym) if self.domains[a.index()].contains(sym) => Ok(sym),
                _ => Err(RelationError::ConstantNotInDomain {
                    constant: text.to_string(),
                    attribute: self.schema.attr_name(a).to_string(),
                }),
            },
            Domain::Unbounded => Ok(self.symbols.intern(text)),
        }
    }

    /// Adds a row from text tokens (`-`, `?mark`, `#!`, or a constant).
    /// Returns the row index.
    pub fn add_row(&mut self, tokens: &[&str]) -> Result<usize, RelationError> {
        if tokens.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                found: tokens.len(),
            });
        }
        let mut values = Vec::with_capacity(tokens.len());
        for (i, token) in tokens.iter().enumerate() {
            let attr = AttrId(i as u16);
            let value = if *token == "-" {
                Value::Null(self.fresh_null())
            } else if *token == "#!" {
                Value::Nothing
            } else if let Some(mark) = token.strip_prefix('?') {
                if mark.is_empty() {
                    return Err(RelationError::Parse {
                        line: 0,
                        message: "a marked null needs a name after '?'".to_string(),
                    });
                }
                match self.marks.get(mark) {
                    Some(id) => Value::Null(*id),
                    None => {
                        let id = self.fresh_null();
                        self.marks.insert(mark.to_string(), id);
                        Value::Null(id)
                    }
                }
            } else {
                Value::Const(self.intern_constant(attr, token)?)
            };
            values.push(value);
        }
        self.tuples.push(Tuple::new(values));
        Ok(self.tuples.len() - 1)
    }

    /// Adds a pre-built tuple (validated for arity; constants are trusted
    /// to be domain members — use [`Instance::intern_constant`] to build
    /// them).
    pub fn add_tuple(&mut self, tuple: Tuple) -> Result<usize, RelationError> {
        if tuple.arity() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        // Keep the null allocator ahead of any ids used by the tuple.
        for (_, n) in tuple.nulls_on(self.schema.all_attrs()) {
            if n.0 >= self.next_null {
                self.next_null = n.0 + 1;
            }
        }
        self.tuples.push(tuple);
        Ok(self.tuples.len() - 1)
    }

    /// Removes the tuple at `row`, shifting later rows down by one, and
    /// returns it. NECs, marks, and the null-id allocator are untouched:
    /// a class may keep members that no longer occur in any tuple
    /// (harmless — ids are never reused), and a deleted row's marked
    /// nulls keep their binding so a re-inserted `?mark` rejoins its
    /// class.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn remove_row(&mut self, row: usize) -> Tuple {
        self.tuples.remove(row)
    }

    /// The null id previously assigned to `mark`, if any.
    pub fn mark(&self, mark: &str) -> Option<NullId> {
        self.marks.get(mark).copied()
    }

    /// Does any tuple contain a null?
    pub fn has_nulls(&self) -> bool {
        let all = self.schema.all_attrs();
        self.tuples.iter().any(|t| t.has_null_on(all))
    }

    /// Number of null occurrences.
    pub fn null_count(&self) -> usize {
        let all = self.schema.all_attrs();
        self.tuples.iter().map(|t| t.nulls_on(all).count()).sum()
    }

    /// Number of `nothing` occurrences (non-zero after a failed extended
    /// chase — Theorem 4(b)).
    pub fn nothing_count(&self) -> usize {
        let all = self.schema.all_attrs();
        self.tuples
            .iter()
            .map(|t| all.iter().filter(|a| t.get(*a).is_nothing()).count())
            .sum()
    }

    /// Returns `true` iff the instance contains neither nulls nor
    /// `nothing` values.
    pub fn is_complete(&self) -> bool {
        let all = self.schema.all_attrs();
        self.tuples
            .iter()
            .all(|t| all.iter().all(|a| t.get(a).is_const()))
    }

    /// The distinct constants appearing in column `a`, sorted.
    pub fn column_constants(&self, a: AttrId) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .tuples
            .iter()
            .filter_map(|t| t.get(a).as_const())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A canonical, order-insensitive-for-null-ids form of the instance:
    /// null ids are renamed to their NEC class, classes are numbered by
    /// first occurrence (row-major), and the tuple list is kept in order.
    ///
    /// Two chase results that differ only in null-id bookkeeping compare
    /// equal under this form — the comparison Theorem 4's Church–Rosser
    /// experiments need.
    pub fn canonical_form(&self) -> CanonicalInstance {
        let mut class_index: HashMap<NullId, usize> = HashMap::new();
        let mut rows = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            let mut row = Vec::with_capacity(self.arity());
            for a in self.schema.all_attrs().iter() {
                row.push(match t.get(a) {
                    Value::Const(s) => CanonValue::Const(s),
                    Value::Nothing => CanonValue::Nothing,
                    Value::Null(n) => {
                        let root = self.necs.find_readonly(n);
                        let next = class_index.len();
                        let idx = *class_index.entry(root).or_insert(next);
                        CanonValue::Null(idx)
                    }
                });
            }
            rows.push(row);
        }
        CanonicalInstance { rows }
    }

    /// Renders the instance as an ASCII table in the style of the paper's
    /// figures. `marked` controls whether nulls display as `-` or `?id`.
    pub fn render(&self, marked: bool) -> String {
        let headers: Vec<String> = self.schema.attrs().iter().map(|a| a.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            let row: Vec<String> = self
                .schema
                .all_attrs()
                .iter()
                .map(|a| t.get(a).render(&self.symbols, marked))
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(cell);
                for _ in cell.len()..*w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        fmt_row(&headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            for _ in 0..w + 2 {
                out.push('-');
            }
            out.push('|');
        }
        out.push('\n');
        for row in &rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

/// Canonicalized value (see [`Instance::canonical_form`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonValue {
    /// A constant symbol.
    Const(Symbol),
    /// A null, identified by canonical class index.
    Null(usize),
    /// The `nothing` element.
    Nothing,
}

/// Canonical form of an instance; equality is the instance equality used
/// by the confluence experiments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalInstance {
    /// Rows in original order, values canonicalized.
    pub rows: Vec<Vec<CanonValue>>,
}

impl CanonicalInstance {
    /// Order-insensitive comparison: both row multisets equal after
    /// sorting. (Canonical null numbering is row-order dependent, so this
    /// is a conservative check used in addition to the ordered one.)
    pub fn same_rows_sorted(&self, other: &CanonicalInstance) -> bool {
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_abc() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("A", ["a1", "a2"])
            .attribute("B", ["b1", "b2", "b3"])
            .attribute("C", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn parse_figure_style_text() {
        let r = Instance::parse(
            schema_abc(),
            "# a comment
             a1 b1 c1
             a1 -  c2
             a2 ?x c1
             -  ?x #!",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.null_count(), 4);
        assert_eq!(r.nothing_count(), 1);
        assert!(!r.is_complete());
        // the two ?x occurrences share a null id
        let n1 = r.value(2, AttrId(1)).as_null().unwrap();
        let n2 = r.value(3, AttrId(1)).as_null().unwrap();
        assert_eq!(n1, n2);
        // anonymous nulls are distinct
        let n3 = r.value(1, AttrId(1)).as_null().unwrap();
        assert_ne!(n1, n3);
    }

    #[test]
    fn domain_violations_are_reported_with_line_numbers() {
        let err = Instance::parse(schema_abc(), "a1 b1 c1\na9 b1 c1").unwrap_err();
        match err {
            RelationError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("a9"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let err = Instance::parse(schema_abc(), "a1 b1").unwrap_err();
        assert!(matches!(err, RelationError::Parse { line: 1, .. }));
    }

    #[test]
    fn unbounded_attributes_intern_lazily() {
        let schema = Schema::builder("People")
            .attribute_unbounded("name")
            .attribute("status", ["married", "single"])
            .build()
            .unwrap();
        let mut r = Instance::new(schema);
        r.add_row(&["John", "married"]).unwrap();
        r.add_row(&["Mary", "-"]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.add_row(&["Bob", "divorced"]).is_err());
    }

    #[test]
    fn column_constants_dedup_and_sort() {
        let r = Instance::parse(schema_abc(), "a1 b2 c1\na2 b1 c1\na1 - c2").unwrap();
        let consts = r.column_constants(AttrId(0));
        assert_eq!(consts.len(), 2);
        let consts_b = r.column_constants(AttrId(1));
        assert_eq!(consts_b.len(), 2);
    }

    #[test]
    fn canonical_form_identifies_renamed_nulls() {
        let schema = schema_abc();
        let r1 = Instance::parse(schema.clone(), "a1 - c1\na2 - c2").unwrap();
        let mut r2 = Instance::new(schema.clone());
        // build the same shape with different null ids
        let x = r2.fresh_null();
        let _skip = r2.fresh_null();
        let y = r2.fresh_null();
        let a1 = r2.intern_constant(AttrId(0), "a1").unwrap();
        let a2 = r2.intern_constant(AttrId(0), "a2").unwrap();
        let c1 = r2.intern_constant(AttrId(2), "c1").unwrap();
        let c2 = r2.intern_constant(AttrId(2), "c2").unwrap();
        r2.add_tuple(Tuple::new(vec![
            Value::Const(a1),
            Value::Null(y),
            Value::Const(c1),
        ]))
        .unwrap();
        r2.add_tuple(Tuple::new(vec![
            Value::Const(a2),
            Value::Null(x),
            Value::Const(c2),
        ]))
        .unwrap();
        assert_eq!(r1.canonical_form(), r2.canonical_form());
    }

    #[test]
    fn canonical_form_respects_nec_classes() {
        let schema = schema_abc();
        // two distinct anonymous nulls …
        let mut r1 = Instance::parse(schema.clone(), "a1 - c1\na2 - c2").unwrap();
        let r_separate = r1.canonical_form();
        // … merged by an NEC become the same canonical class
        let n1 = r1.value(0, AttrId(1)).as_null().unwrap();
        let n2 = r1.value(1, AttrId(1)).as_null().unwrap();
        r1.add_nec(n1, n2);
        let r_merged = r1.canonical_form();
        assert_ne!(r_separate, r_merged);
        // and equal a parse with a shared mark
        let r2 = Instance::parse(schema, "a1 ?u c1\na2 ?u c2").unwrap();
        assert_eq!(r_merged, r2.canonical_form());
    }

    #[test]
    fn render_matches_paper_layout() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na1 - c2").unwrap();
        let text = r.render(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].contains('A') && lines[0].contains('B'));
        assert!(lines[3].contains('-'));
        let marked = r.render(true);
        assert!(marked.contains("?1") || marked.contains("?0"));
    }

    #[test]
    fn add_tuple_advances_null_allocator() {
        let mut r = Instance::new(schema_abc());
        let a1 = r.intern_constant(AttrId(0), "a1").unwrap();
        r.add_tuple(Tuple::new(vec![
            Value::Const(a1),
            Value::Null(NullId(7)),
            Value::Null(NullId(3)),
        ]))
        .unwrap();
        let fresh = r.fresh_null();
        assert!(
            fresh.0 > 7,
            "fresh nulls must not collide with imported ids"
        );
    }

    #[test]
    fn same_rows_sorted_ignores_tuple_order() {
        let schema = schema_abc();
        let r1 = Instance::parse(schema.clone(), "a1 b1 c1\na2 b2 c2").unwrap();
        let r2 = Instance::parse(schema, "a2 b2 c2\na1 b1 c1").unwrap();
        assert_ne!(r1.canonical_form(), r2.canonical_form());
        assert!(r1.canonical_form().same_rows_sorted(&r2.canonical_form()));
    }
}
