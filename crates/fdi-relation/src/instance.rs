//! Relation instances: tuples over a schema, with marked nulls and NECs.
//!
//! An [`Instance`] owns everything operational: the interned symbol
//! table, the symbol-level finite domains, the tuples, the null-equality
//! constraints, and the null-id allocator. Two instances of the same
//! [`Schema`] are completely independent.
//!
//! ## Row identity: a slot arena
//!
//! Rows live in **stable slots** addressed by [`RowId`]: inserting
//! appends a slot, deleting tombstones one in `O(1)`, and no surviving
//! row is ever renumbered. Consumers that key on rows (determinant
//! indexes, chase occurrence lists, worklists) therefore stay valid
//! across deletes with no id-shift pass. Live rows iterate in ascending
//! slot order ([`Instance::iter_live`]), which equals insertion order —
//! so the displayed/serialized order is exactly what a dense tuple
//! vector would show, tombstones and all. Removing the most recently
//! appended row releases its slot entirely (the arena truncates trailing
//! tombstones), which is what lets an insert-then-rollback sequence
//! leave the instance byte-identical to never having inserted. Interior
//! tombstones persist until an explicit [`Instance::compact`], which
//! returns the old → new [`RowId`] remap for index maintenance.
//!
//! The text format used by [`Instance::parse`] mirrors the paper's
//! figures: one tuple per line, values separated by whitespace, `-` for
//! an anonymous null, `?name` for a *marked* null (two occurrences of the
//! same mark denote the same unknown value), `#!` for the `nothing`
//! element, and `#`-prefixed comment lines.

use crate::attrs::AttrId;
use crate::domain::Domain;
use crate::error::RelationError;
use crate::nec::NecStore;
use crate::rowid::{RowId, RowIdShard};
use crate::schema::{DomainSpec, Schema};
use crate::serial::{self, DecodeError, Reader};
use crate::symbol::{Symbol, SymbolTable};
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A relation instance `r` of a scheme `R`.
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    symbols: SymbolTable,
    domains: Vec<Domain>,
    /// Row slots: `Some` = live tuple, `None` = tombstone. Appends only
    /// grow the vector; removals tombstone (or truncate a trailing
    /// slot), so a slot index — a [`RowId`] — is stable for the lifetime
    /// of its row.
    slots: Vec<Option<Tuple>>,
    /// Slot indices of interior tombstones (trailing ones are truncated
    /// away immediately). Cleared by [`Instance::compact`].
    free: Vec<u32>,
    /// Number of live rows.
    live: usize,
    necs: NecStore,
    next_null: u32,
    marks: HashMap<String, NullId>,
}

impl Instance {
    /// Creates an empty instance, interning all finite domain values.
    pub fn new(schema: Arc<Schema>) -> Instance {
        let mut symbols = SymbolTable::new();
        let domains = schema
            .attrs()
            .iter()
            .map(|attr| match &attr.domain {
                DomainSpec::Finite(values) => {
                    Domain::finite(values.iter().map(|v| symbols.intern(v)))
                }
                DomainSpec::Unbounded => Domain::Unbounded,
            })
            .collect();
        Instance {
            schema,
            symbols,
            domains,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            necs: NecStore::new(),
            next_null: 0,
            marks: HashMap::new(),
        }
    }

    /// Parses an instance from text (see the module documentation for the
    /// format).
    pub fn parse(schema: Arc<Schema>, text: &str) -> Result<Instance, RelationError> {
        let mut instance = Instance::new(schema);
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            instance.add_row(&tokens).map_err(|e| match e {
                RelationError::Parse { message, .. } => RelationError::Parse {
                    line: lineno + 1,
                    message,
                },
                other => RelationError::Parse {
                    line: lineno + 1,
                    message: other.to_string(),
                },
            })?;
        }
        Ok(instance)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The interned symbols.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The symbol-level domain of attribute `a`.
    pub fn domain(&self, a: AttrId) -> &Domain {
        &self.domains[a.index()]
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` iff the instance has no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Exclusive upper bound on slot indices: every live [`RowId`] `id`
    /// satisfies `id.index() < slot_bound()`. Use this to size dense
    /// per-slot side tables; it exceeds [`Instance::len`] exactly when
    /// interior tombstones exist.
    pub fn slot_bound(&self) -> usize {
        self.slots.len()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Is `row` a live row of this instance?
    pub fn is_live(&self, row: RowId) -> bool {
        matches!(self.slots.get(row.index()), Some(Some(_)))
    }

    /// Live rows with their tuples, in ascending slot order (= insertion
    /// order = display order).
    pub fn iter_live(&self) -> impl Iterator<Item = (RowId, &Tuple)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (RowId(i as u32), t)))
    }

    /// Partitions the slot space `0..slot_bound()` into exactly
    /// `k.max(1)` contiguous [`RowIdShard`]s — the unit of parallel work
    /// for the `fdi-exec` executor. Shards are near-equal in *slot*
    /// count; tombstones simply yield fewer live rows in their shard, so
    /// a shard may be empty (all-tombstone ranges, or `k` exceeding the
    /// slot bound). Concatenating [`Instance::iter_live_in`] over the
    /// shards in order reproduces [`Instance::iter_live`] exactly —
    /// which is what makes shard-order merges of per-shard results equal
    /// to sequential results at any shard count.
    ///
    /// Slot ids are stable under deletes (removal tombstones, never
    /// renumbers), so shard boundaries never invalidate: per-shard
    /// structures need no cross-shard renumbering barrier.
    pub fn row_id_shards(&self, k: usize) -> Vec<RowIdShard> {
        let k = k.max(1);
        let bound = self.slots.len();
        let chunk = bound.div_ceil(k).max(1);
        (0..k)
            .map(|i| {
                let start = (i * chunk).min(bound);
                let end = ((i + 1) * chunk).min(bound);
                RowIdShard {
                    start: start as u32,
                    end: end as u32,
                }
            })
            .collect()
    }

    /// The live rows of one shard, in ascending slot order — the
    /// restriction of [`Instance::iter_live`] to the shard's slot range.
    pub fn iter_live_in(&self, shard: RowIdShard) -> impl Iterator<Item = (RowId, &Tuple)> + '_ {
        let start = (shard.start as usize).min(self.slots.len());
        let end = (shard.end as usize).min(self.slots.len()).max(start);
        self.slots[start..end]
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|t| (RowId(start as u32 + i as u32), t)))
    }

    /// Live row ids, in ascending slot order.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        self.iter_live().map(|(id, _)| id)
    }

    /// Live tuples in display order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.iter_live().map(|(_, t)| t)
    }

    /// Live tuples cloned into a dense vector (display order) — for
    /// consumers that operate on plain tuple lists, like the completion
    /// evaluators.
    pub fn tuples_vec(&self) -> Vec<Tuple> {
        self.tuples().cloned().collect()
    }

    /// The id of the `i`-th live row in display order — the positional
    /// accessor for rendered output (a user pointing at "row 2" of a
    /// printed table means `nth_row(2)`).
    ///
    /// # Panics
    /// Panics when fewer than `i + 1` rows are live.
    pub fn nth_row(&self, i: usize) -> RowId {
        self.row_ids()
            .nth(i)
            .unwrap_or_else(|| panic!("nth_row({i}): only {} live rows", self.live))
    }

    /// One tuple.
    ///
    /// # Panics
    /// Panics when `row` is not a live row.
    pub fn tuple(&self, row: RowId) -> &Tuple {
        self.slots
            .get(row.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no live row {row}"))
    }

    /// The value at (`row`, `attr`).
    pub fn value(&self, row: RowId, attr: AttrId) -> Value {
        self.tuple(row).get(attr)
    }

    /// Overwrites the value at (`row`, `attr`) — used by the chase
    /// engines and the substitution rules.
    ///
    /// # Panics
    /// Panics when `row` is not a live row.
    pub fn set_value(&mut self, row: RowId, attr: AttrId, v: Value) {
        self.slots
            .get_mut(row.index())
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("no live row {row}"))
            .set(attr, v);
    }

    /// The NEC store.
    pub fn necs(&self) -> &NecStore {
        &self.necs
    }

    /// Mutable access to the NEC store.
    pub fn necs_mut(&mut self) -> &mut NecStore {
        &mut self.necs
    }

    /// Introduces the NEC `a := b`; returns `true` if knowledge increased.
    pub fn add_nec(&mut self, a: NullId, b: NullId) -> bool {
        self.necs.union(a, b)
    }

    /// Replaces the NEC store wholesale — used by chase engines when they
    /// materialize a new null-class structure (same-id nulls remain
    /// equivalent by definition regardless of the store).
    pub fn replace_necs(&mut self, necs: NecStore) {
        self.necs = necs;
    }

    /// Allocates a fresh null id.
    pub fn fresh_null(&mut self) -> NullId {
        let id = NullId(self.next_null);
        self.next_null += 1;
        id
    }

    /// Ensures future [`Instance::fresh_null`] calls return ids strictly
    /// greater than `id` — used after writing externally numbered nulls
    /// via [`Instance::set_value`].
    pub fn reserve_null_ids(&mut self, id: NullId) {
        if id.0 >= self.next_null {
            self.next_null = id.0 + 1;
        }
    }

    /// Interns a constant for attribute `a`, enforcing domain membership
    /// for finite domains.
    pub fn intern_constant(&mut self, a: AttrId, text: &str) -> Result<Symbol, RelationError> {
        match &self.domains[a.index()] {
            Domain::Finite(_) => match self.symbols.lookup(text) {
                Some(sym) if self.domains[a.index()].contains(sym) => Ok(sym),
                _ => Err(RelationError::ConstantNotInDomain {
                    constant: text.to_string(),
                    attribute: self.schema.attr_name(a).to_string(),
                }),
            },
            Domain::Unbounded => Ok(self.symbols.intern(text)),
        }
    }

    /// Appends a tuple to a fresh slot. Allocation never reuses an
    /// interior tombstone: keeping slot order equal to insertion order is
    /// what makes the displayed/serialized order identical to a dense
    /// tuple vector's.
    fn alloc_slot(&mut self, tuple: Tuple) -> RowId {
        let id = RowId(self.slots.len() as u32);
        self.slots.push(Some(tuple));
        self.live += 1;
        id
    }

    /// Adds a row from text tokens (`-`, `?mark`, `#!`, or a constant).
    /// Returns the new row's id.
    pub fn add_row(&mut self, tokens: &[&str]) -> Result<RowId, RelationError> {
        if tokens.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                found: tokens.len(),
            });
        }
        let mut values = Vec::with_capacity(tokens.len());
        for (i, token) in tokens.iter().enumerate() {
            let attr = AttrId(i as u16);
            let value = if *token == "-" {
                Value::Null(self.fresh_null())
            } else if *token == "#!" {
                Value::Nothing
            } else if let Some(mark) = token.strip_prefix('?') {
                if mark.is_empty() {
                    return Err(RelationError::Parse {
                        line: 0,
                        message: "a marked null needs a name after '?'".to_string(),
                    });
                }
                match self.marks.get(mark) {
                    Some(id) => Value::Null(*id),
                    None => {
                        let id = self.fresh_null();
                        self.marks.insert(mark.to_string(), id);
                        Value::Null(id)
                    }
                }
            } else {
                Value::Const(self.intern_constant(attr, token)?)
            };
            values.push(value);
        }
        Ok(self.alloc_slot(Tuple::new(values)))
    }

    /// Adds a pre-built tuple (validated for arity; constants are trusted
    /// to be domain members — use [`Instance::intern_constant`] to build
    /// them). Returns the new row's id.
    pub fn add_tuple(&mut self, tuple: Tuple) -> Result<RowId, RelationError> {
        if tuple.arity() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        // Keep the null allocator ahead of any ids used by the tuple.
        for (_, n) in tuple.nulls_on(self.schema.all_attrs()) {
            if n.0 >= self.next_null {
                self.next_null = n.0 + 1;
            }
        }
        Ok(self.alloc_slot(tuple))
    }

    /// Removes the row at `row` in `O(1)` and returns its tuple. No
    /// surviving row is renumbered: the slot becomes a tombstone (or,
    /// for the most recently appended row, is released outright — so an
    /// insert immediately undone by a rollback leaves the arena exactly
    /// as it was). NECs, marks, and the null-id allocator are untouched:
    /// a class may keep members that no longer occur in any tuple
    /// (harmless — ids are never reused), and a deleted row's marked
    /// nulls keep their binding so a re-inserted `?mark` rejoins its
    /// class.
    ///
    /// # Panics
    /// Panics when `row` is not a live row.
    pub fn remove_row(&mut self, row: RowId) -> Tuple {
        let slot = row.index();
        let tuple = self
            .slots
            .get_mut(slot)
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("remove_row: no live row {row}"));
        self.live -= 1;
        if slot + 1 == self.slots.len() {
            self.slots.pop();
            while matches!(self.slots.last(), Some(None)) {
                self.slots.pop();
            }
            let bound = self.slots.len() as u32;
            self.free.retain(|&s| s < bound);
        } else {
            self.free.push(row.0);
        }
        tuple
    }

    /// Number of interior tombstones — dead slots a future
    /// [`Instance::compact`] would reclaim (trailing ones are already
    /// truncated on removal). Equals `slot_bound() - len()`.
    pub fn tombstone_count(&self) -> usize {
        self.free.len()
    }

    /// Densifies the arena: live rows are repacked into slots
    /// `0..len()`, preserving order, and interior tombstones disappear.
    /// Returns the `(old, new)` id pairs of every row that moved, so
    /// side structures keyed by [`RowId`] can be remapped instead of
    /// rebuilt. Already-dense instances (an empty free list) return
    /// without scanning.
    pub fn compact(&mut self) -> Vec<(RowId, RowId)> {
        if self.free.is_empty() {
            return Vec::new(); // no interior tombstones: nothing to move
        }
        let mut moved = Vec::new();
        let mut next = 0usize;
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_some() {
                if slot != next {
                    self.slots[next] = self.slots[slot].take();
                    moved.push((RowId(slot as u32), RowId(next as u32)));
                }
                next += 1;
            }
        }
        self.slots.truncate(next);
        self.free.clear();
        moved
    }

    /// The null id previously assigned to `mark`, if any.
    pub fn mark(&self, mark: &str) -> Option<NullId> {
        self.marks.get(mark).copied()
    }

    /// Does any tuple contain a null?
    pub fn has_nulls(&self) -> bool {
        let all = self.schema.all_attrs();
        self.tuples().any(|t| t.has_null_on(all))
    }

    /// Number of null occurrences.
    pub fn null_count(&self) -> usize {
        let all = self.schema.all_attrs();
        self.tuples().map(|t| t.nulls_on(all).count()).sum()
    }

    /// Number of `nothing` occurrences (non-zero after a failed extended
    /// chase — Theorem 4(b)).
    pub fn nothing_count(&self) -> usize {
        let all = self.schema.all_attrs();
        self.tuples()
            .map(|t| all.iter().filter(|a| t.get(*a).is_nothing()).count())
            .sum()
    }

    /// Returns `true` iff the instance contains neither nulls nor
    /// `nothing` values.
    pub fn is_complete(&self) -> bool {
        let all = self.schema.all_attrs();
        self.tuples()
            .all(|t| all.iter().all(|a| t.get(a).is_const()))
    }

    /// The distinct constants appearing in column `a`, sorted.
    pub fn column_constants(&self, a: AttrId) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.tuples().filter_map(|t| t.get(a).as_const()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A canonical, order-insensitive-for-null-ids form of the instance:
    /// null ids are renamed to their NEC class, classes are numbered by
    /// first occurrence (row-major over live rows in display order), and
    /// the tuple list is kept in that order. Tombstones do not
    /// participate: a tombstoned instance and its compacted twin share
    /// one canonical form.
    ///
    /// Two chase results that differ only in null-id bookkeeping compare
    /// equal under this form — the comparison Theorem 4's Church–Rosser
    /// experiments need.
    pub fn canonical_form(&self) -> CanonicalInstance {
        let mut class_index: HashMap<NullId, usize> = HashMap::new();
        let mut rows = Vec::with_capacity(self.live);
        for t in self.tuples() {
            let mut row = Vec::with_capacity(self.arity());
            for a in self.schema.all_attrs().iter() {
                row.push(match t.get(a) {
                    Value::Const(s) => CanonValue::Const(s),
                    Value::Nothing => CanonValue::Nothing,
                    Value::Null(n) => {
                        let root = self.necs.find_readonly(n);
                        let next = class_index.len();
                        let idx = *class_index.entry(root).or_insert(next);
                        CanonValue::Null(idx)
                    }
                });
            }
            rows.push(row);
        }
        CanonicalInstance { rows }
    }

    /// Serializes the **exact operational state** of the instance — the
    /// interned symbol table, the null-id allocator, the `?mark`
    /// bindings, the union–find internals, every slot (tombstones
    /// included), and the interior free list — so that the decoded twin
    /// ([`Instance::decode_state`]) is indistinguishable from the
    /// original under any later sequence of mutations. This is the
    /// snapshot currency of the durability layer's genesis/checkpoint
    /// records: log replay on the decoded state must be bit-identical to
    /// having applied the ops live, which a merely
    /// [`canonical_form`](Instance::canonical_form)-equal copy (fresh
    /// null ids, reset allocator, compacted slots) would not give.
    ///
    /// The schema itself is *not* serialized — the caller stores it
    /// alongside and passes it back to `decode_state`, which validates
    /// the symbol table against it. Byte output is deterministic: equal
    /// states encode to equal bytes (map-backed fields are emitted in
    /// sorted order).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        serial::put_u32(out, self.symbols.len() as u32);
        for name in self.symbols.names() {
            serial::put_str(out, name);
        }
        serial::put_u32(out, self.next_null);
        let mut marks: Vec<(&str, NullId)> =
            self.marks.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        marks.sort_unstable();
        serial::put_u32(out, marks.len() as u32);
        for (name, id) in marks {
            serial::put_str(out, name);
            serial::put_u32(out, id.0);
        }
        self.necs.encode_state(out);
        serial::put_u32(out, self.slots.len() as u32);
        for slot in &self.slots {
            match slot {
                None => serial::put_u8(out, 0),
                Some(tuple) => {
                    serial::put_u8(out, 1);
                    for v in tuple.values() {
                        match v {
                            Value::Const(s) => {
                                serial::put_u8(out, 0);
                                serial::put_u32(out, s.0);
                            }
                            Value::Null(n) => {
                                serial::put_u8(out, 1);
                                serial::put_u32(out, n.0);
                            }
                            Value::Nothing => serial::put_u8(out, 2),
                        }
                    }
                }
            }
        }
        serial::put_u32(out, self.free.len() as u32);
        for &f in &self.free {
            serial::put_u32(out, f);
        }
    }

    /// Decodes a state serialized by [`Instance::encode_state`] against
    /// `schema` — which must be the schema the encoder ran under: the
    /// pre-interned finite-domain symbols are re-derived from it and
    /// checked id-for-id against the serialized table, so a schema
    /// mismatch surfaces as a [`DecodeError`] rather than silently
    /// renumbered constants. All ids (symbols, nulls, parent pointers,
    /// free slots) are bounds-checked; constants' domain membership is
    /// trusted (the encoder only ever writes instance-validated values).
    pub fn decode_state(schema: Arc<Schema>, r: &mut Reader<'_>) -> Result<Instance, DecodeError> {
        let mut instance = Instance::new(schema);
        let preinterned = instance.symbols.len();
        let symbol_count = r.u32()? as usize;
        if symbol_count < preinterned {
            return Err(r.err(format!(
                "symbol table has {symbol_count} entries, schema pre-interns {preinterned}"
            )));
        }
        for i in 0..symbol_count {
            let name = r.str()?;
            let sym = instance.symbols.intern(&name);
            if sym.index() != i {
                return Err(r.err(format!(
                    "symbol {i} {name:?} interned as {sym} — table disagrees with schema"
                )));
            }
        }
        let next_null = r.u32()?;
        let mark_count = r.u32()? as usize;
        let mut marks = HashMap::with_capacity(mark_count);
        for _ in 0..mark_count {
            let name = r.str()?;
            let id = r.u32()?;
            if id >= next_null {
                return Err(r.err(format!(
                    "mark {name:?} binds null {id} at or past the allocator ({next_null})"
                )));
            }
            if marks.insert(name.clone(), NullId(id)).is_some() {
                return Err(r.err(format!("duplicate mark {name:?}")));
            }
        }
        let necs = NecStore::decode_state(r)?;
        let slot_count = r.u32()? as usize;
        let arity = instance.arity();
        let mut slots = Vec::with_capacity(slot_count);
        let mut live = 0usize;
        for slot in 0..slot_count {
            match r.u8()? {
                0 => slots.push(None),
                1 => {
                    let mut values = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        values.push(match r.u8()? {
                            0 => {
                                let s = r.u32()?;
                                if s as usize >= symbol_count {
                                    return Err(r.err(format!(
                                        "slot {slot}: symbol {s} outside the table"
                                    )));
                                }
                                Value::Const(Symbol(s))
                            }
                            1 => {
                                let n = r.u32()?;
                                if n >= next_null {
                                    return Err(r.err(format!(
                                        "slot {slot}: null {n} at or past the allocator"
                                    )));
                                }
                                Value::Null(NullId(n))
                            }
                            2 => Value::Nothing,
                            tag => return Err(r.err(format!("slot {slot}: bad value tag {tag}"))),
                        });
                    }
                    slots.push(Some(Tuple::new(values)));
                    live += 1;
                }
                tag => return Err(r.err(format!("slot {slot}: bad slot tag {tag}"))),
            }
        }
        if matches!(slots.last(), Some(None)) {
            return Err(r.err("trailing tombstone (the arena truncates those on removal)"));
        }
        let free_count = r.u32()? as usize;
        if free_count != slots.iter().filter(|s| s.is_none()).count() {
            return Err(r.err(format!(
                "free list has {free_count} entries but the arena disagrees"
            )));
        }
        let mut free = Vec::with_capacity(free_count);
        let mut seen = vec![false; slot_count];
        for _ in 0..free_count {
            let f = r.u32()?;
            match slots.get(f as usize) {
                Some(None) if !seen[f as usize] => seen[f as usize] = true,
                Some(None) => return Err(r.err(format!("slot {f} freed twice"))),
                _ => return Err(r.err(format!("free-list entry {f} is not a tombstone"))),
            }
            free.push(f);
        }
        instance.next_null = next_null;
        instance.marks = marks;
        instance.necs = necs;
        instance.slots = slots;
        instance.free = free;
        instance.live = live;
        Ok(instance)
    }

    /// Renders the instance as an ASCII table in the style of the paper's
    /// figures. `marked` controls whether nulls display as `-` or `?id`.
    /// Live rows only, in display order — tombstones leave no gap.
    pub fn render(&self, marked: bool) -> String {
        let headers: Vec<String> = self.schema.attrs().iter().map(|a| a.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.live);
        for t in self.tuples() {
            let row: Vec<String> = self
                .schema
                .all_attrs()
                .iter()
                .map(|a| t.get(a).render(&self.symbols, marked))
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            rows.push(row);
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(cell);
                for _ in cell.len()..*w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        fmt_row(&headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            for _ in 0..w + 2 {
                out.push('-');
            }
            out.push('|');
        }
        out.push('\n');
        for row in &rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

/// Canonicalized value (see [`Instance::canonical_form`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonValue {
    /// A constant symbol.
    Const(Symbol),
    /// A null, identified by canonical class index.
    Null(usize),
    /// The `nothing` element.
    Nothing,
}

/// Canonical form of an instance; equality is the instance equality used
/// by the confluence experiments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalInstance {
    /// Rows in display order, values canonicalized.
    pub rows: Vec<Vec<CanonValue>>,
}

impl CanonicalInstance {
    /// Order-insensitive comparison: both row multisets equal after
    /// sorting. (Canonical null numbering is row-order dependent, so this
    /// is a conservative check used in addition to the ordered one.)
    pub fn same_rows_sorted(&self, other: &CanonicalInstance) -> bool {
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_abc() -> Arc<Schema> {
        Schema::builder("R")
            .attribute("A", ["a1", "a2"])
            .attribute("B", ["b1", "b2", "b3"])
            .attribute("C", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn parse_figure_style_text() {
        let r = Instance::parse(
            schema_abc(),
            "# a comment
             a1 b1 c1
             a1 -  c2
             a2 ?x c1
             -  ?x #!",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.null_count(), 4);
        assert_eq!(r.nothing_count(), 1);
        assert!(!r.is_complete());
        // the two ?x occurrences share a null id
        let n1 = r.value(r.nth_row(2), AttrId(1)).as_null().unwrap();
        let n2 = r.value(r.nth_row(3), AttrId(1)).as_null().unwrap();
        assert_eq!(n1, n2);
        // anonymous nulls are distinct
        let n3 = r.value(r.nth_row(1), AttrId(1)).as_null().unwrap();
        assert_ne!(n1, n3);
    }

    #[test]
    fn domain_violations_are_reported_with_line_numbers() {
        let err = Instance::parse(schema_abc(), "a1 b1 c1\na9 b1 c1").unwrap_err();
        match err {
            RelationError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("a9"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let err = Instance::parse(schema_abc(), "a1 b1").unwrap_err();
        assert!(matches!(err, RelationError::Parse { line: 1, .. }));
    }

    #[test]
    fn unbounded_attributes_intern_lazily() {
        let schema = Schema::builder("People")
            .attribute_unbounded("name")
            .attribute("status", ["married", "single"])
            .build()
            .unwrap();
        let mut r = Instance::new(schema);
        r.add_row(&["John", "married"]).unwrap();
        r.add_row(&["Mary", "-"]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.add_row(&["Bob", "divorced"]).is_err());
    }

    #[test]
    fn column_constants_dedup_and_sort() {
        let r = Instance::parse(schema_abc(), "a1 b2 c1\na2 b1 c1\na1 - c2").unwrap();
        let consts = r.column_constants(AttrId(0));
        assert_eq!(consts.len(), 2);
        let consts_b = r.column_constants(AttrId(1));
        assert_eq!(consts_b.len(), 2);
    }

    #[test]
    fn canonical_form_identifies_renamed_nulls() {
        let schema = schema_abc();
        let r1 = Instance::parse(schema.clone(), "a1 - c1\na2 - c2").unwrap();
        let mut r2 = Instance::new(schema.clone());
        // build the same shape with different null ids
        let x = r2.fresh_null();
        let _skip = r2.fresh_null();
        let y = r2.fresh_null();
        let a1 = r2.intern_constant(AttrId(0), "a1").unwrap();
        let a2 = r2.intern_constant(AttrId(0), "a2").unwrap();
        let c1 = r2.intern_constant(AttrId(2), "c1").unwrap();
        let c2 = r2.intern_constant(AttrId(2), "c2").unwrap();
        r2.add_tuple(Tuple::new(vec![
            Value::Const(a1),
            Value::Null(y),
            Value::Const(c1),
        ]))
        .unwrap();
        r2.add_tuple(Tuple::new(vec![
            Value::Const(a2),
            Value::Null(x),
            Value::Const(c2),
        ]))
        .unwrap();
        assert_eq!(r1.canonical_form(), r2.canonical_form());
    }

    #[test]
    fn canonical_form_respects_nec_classes() {
        let schema = schema_abc();
        // two distinct anonymous nulls …
        let mut r1 = Instance::parse(schema.clone(), "a1 - c1\na2 - c2").unwrap();
        let r_separate = r1.canonical_form();
        // … merged by an NEC become the same canonical class
        let n1 = r1.value(r1.nth_row(0), AttrId(1)).as_null().unwrap();
        let n2 = r1.value(r1.nth_row(1), AttrId(1)).as_null().unwrap();
        r1.add_nec(n1, n2);
        let r_merged = r1.canonical_form();
        assert_ne!(r_separate, r_merged);
        // and equal a parse with a shared mark
        let r2 = Instance::parse(schema, "a1 ?u c1\na2 ?u c2").unwrap();
        assert_eq!(r_merged, r2.canonical_form());
    }

    #[test]
    fn render_matches_paper_layout() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na1 - c2").unwrap();
        let text = r.render(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].contains('A') && lines[0].contains('B'));
        assert!(lines[3].contains('-'));
        let marked = r.render(true);
        assert!(marked.contains("?1") || marked.contains("?0"));
    }

    #[test]
    fn add_tuple_advances_null_allocator() {
        let mut r = Instance::new(schema_abc());
        let a1 = r.intern_constant(AttrId(0), "a1").unwrap();
        r.add_tuple(Tuple::new(vec![
            Value::Const(a1),
            Value::Null(NullId(7)),
            Value::Null(NullId(3)),
        ]))
        .unwrap();
        let fresh = r.fresh_null();
        assert!(
            fresh.0 > 7,
            "fresh nulls must not collide with imported ids"
        );
    }

    #[test]
    fn same_rows_sorted_ignores_tuple_order() {
        let schema = schema_abc();
        let r1 = Instance::parse(schema.clone(), "a1 b1 c1\na2 b2 c2").unwrap();
        let r2 = Instance::parse(schema, "a2 b2 c2\na1 b1 c1").unwrap();
        assert_ne!(r1.canonical_form(), r2.canonical_form());
        assert!(r1.canonical_form().same_rows_sorted(&r2.canonical_form()));
    }

    #[test]
    fn remove_row_tombstones_without_renumbering() {
        let mut r = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1").unwrap();
        let (r0, r1, r2) = (r.nth_row(0), r.nth_row(1), r.nth_row(2));
        let removed = r.remove_row(r1);
        assert_eq!(removed.get(AttrId(1)).as_const(), r.symbols().lookup("b2"));
        assert_eq!(r.len(), 2);
        assert!(r.is_live(r0) && !r.is_live(r1) && r.is_live(r2));
        // survivors keep their ids and values
        assert_eq!(r.value(r2, AttrId(1)).as_const(), r.symbols().lookup("b3"));
        assert_eq!(r.slot_bound(), 3, "interior tombstone keeps the slot");
        let ids: Vec<RowId> = r.row_ids().collect();
        assert_eq!(ids, vec![r0, r2]);
    }

    #[test]
    fn removing_the_last_row_releases_its_slot() {
        let mut r = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2").unwrap();
        let last = r.nth_row(1);
        r.remove_row(last);
        assert_eq!(r.slot_bound(), 1, "trailing slot truncated");
        // the next insert re-occupies the released slot id
        let re = r.add_row(&["a2", "b3", "c1"]).unwrap();
        assert_eq!(re, last, "slot id reused after trailing removal");
        // removing an interior row first, then the tail, truncates both
        let mut r2 = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1").unwrap();
        r2.remove_row(r2.nth_row(1));
        r2.remove_row(r2.nth_row(1)); // the old tail; interior tombstone trails now
        assert_eq!(r2.slot_bound(), 1);
        assert_eq!(r2.len(), 1);
        assert_eq!(r2.add_row(&["a2", "b1", "c2"]).unwrap(), RowId(1));
    }

    #[test]
    fn display_order_stays_dense_after_delete_and_reinsert() {
        // Tombstoned-then-extended instance must print exactly like a
        // densely built twin with the same live tuples.
        let mut r = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1").unwrap();
        r.remove_row(r.nth_row(1));
        r.add_row(&["a2", "b1", "c2"]).unwrap();
        let dense = Instance::parse(schema_abc(), "a1 b1 c1\na2 b3 c1\na2 b1 c2").unwrap();
        assert_eq!(r.render(false), dense.render(false));
        assert_eq!(r.to_string(), dense.to_string());
        assert_eq!(r.canonical_form(), dense.canonical_form());
        // iter_live agrees with the rendered order
        let rendered = r.render(false);
        let rendered_rows: Vec<&str> = rendered.lines().skip(2).collect();
        for ((_, t), line) in r.iter_live().zip(rendered_rows) {
            let first = t.get(AttrId(0)).render(r.symbols(), false);
            assert!(line.contains(&first));
        }
    }

    #[test]
    fn shards_partition_the_live_rows_at_any_k() {
        let mut r = Instance::parse(
            schema_abc(),
            "a1 b1 c1\na1 b2 c2\na2 b3 c1\na2 b1 c2\na1 b3 c2",
        )
        .unwrap();
        // interior tombstones at slots 1 and 3
        r.remove_row(r.nth_row(1));
        r.remove_row(RowId(3));
        assert_eq!(r.len(), 3);
        assert_eq!(r.slot_bound(), 5);
        let all: Vec<RowId> = r.row_ids().collect();
        for k in [1, 2, 3, 4, 5, 7, 16] {
            let shards = r.row_id_shards(k);
            assert_eq!(shards.len(), k, "exactly k shards at k = {k}");
            // shards tile [0, slot_bound) contiguously
            assert_eq!(shards[0].start, 0);
            assert_eq!(shards.last().unwrap().end as usize, r.slot_bound());
            for w in shards.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous at k = {k}");
            }
            // concatenated shard iteration == iter_live
            let concat: Vec<RowId> = shards
                .iter()
                .flat_map(|&s| r.iter_live_in(s).map(|(id, _)| id))
                .collect();
            assert_eq!(concat, all, "k = {k}");
            // membership agrees with contains()
            for &s in &shards {
                for (id, _) in r.iter_live_in(s) {
                    assert!(s.contains(id));
                }
            }
        }
        // k > live count: the surplus shards are empty but harmless
        let shards = r.row_id_shards(16);
        let live_shards = shards
            .iter()
            .filter(|&&s| r.iter_live_in(s).count() > 0)
            .count();
        assert_eq!(live_shards, 3, "one singleton shard per live row");
        assert!(shards.iter().any(|s| s.is_empty()));
    }

    #[test]
    fn all_tombstone_shards_yield_no_rows() {
        let mut r =
            Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1\na2 b1 c2").unwrap();
        // tombstone slots 1 and 2: with k = 2 and chunk = 2 the shard
        // [2, 4) holds one live row, and after also removing slot 3's
        // twin … build the sharper case: kill 2 and 3 via nth positions.
        r.remove_row(RowId(2));
        r.remove_row(RowId(1));
        assert_eq!(r.slot_bound(), 4, "interior tombstones keep slots");
        let shards = r.row_id_shards(2);
        assert_eq!(shards[0].slot_len(), 2);
        // shard [2, 4): slot 2 is a tombstone, slot 3 is live
        assert_eq!(r.iter_live_in(shards[1]).count(), 1);
        // now an entirely dead range: remove slot 3 too (trailing, so it
        // truncates together with tombstone 2 … make a fresh arena where
        // the dead range is interior instead)
        let mut r2 = Instance::parse(
            schema_abc(),
            "a1 b1 c1\na1 b2 c2\na2 b3 c1\na2 b1 c2\na1 b3 c2\na2 b2 c1",
        )
        .unwrap();
        r2.remove_row(RowId(2));
        r2.remove_row(RowId(3));
        let shards = r2.row_id_shards(3);
        assert_eq!(shards[1].slot_len(), 2, "shard [2,4) spans the dead range");
        assert_eq!(
            r2.iter_live_in(shards[1]).count(),
            0,
            "all-tombstone shard is empty of live rows"
        );
        let concat: Vec<RowId> = shards
            .iter()
            .flat_map(|&s| r2.iter_live_in(s).map(|(id, _)| id))
            .collect();
        assert_eq!(concat, r2.row_ids().collect::<Vec<_>>());
    }

    #[test]
    fn shards_on_empty_and_compacted_arenas() {
        let empty = Instance::new(schema_abc());
        let shards = empty.row_id_shards(4);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.is_empty()));
        assert_eq!(empty.row_id_shards(0).len(), 1, "k = 0 behaves as k = 1");

        let mut r = Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1").unwrap();
        r.remove_row(r.nth_row(1));
        r.compact();
        assert_eq!(r.slot_bound(), r.len());
        let shards = r.row_id_shards(2);
        let concat: Vec<RowId> = shards
            .iter()
            .flat_map(|&s| r.iter_live_in(s).map(|(id, _)| id))
            .collect();
        assert_eq!(concat, r.row_ids().collect::<Vec<_>>());
        assert_eq!(concat.len(), 2);
    }

    #[test]
    fn shard_ranges_clamp_beyond_the_arena() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1").unwrap();
        // a stale shard drawn from a larger arena clamps safely
        let wide = RowIdShard::new(0, 100);
        assert_eq!(r.iter_live_in(wide).count(), 1);
        let beyond = RowIdShard::new(50, 100);
        assert_eq!(r.iter_live_in(beyond).count(), 0);
        // inverted bounds collapse to empty
        assert!(RowIdShard::new(5, 3).is_empty());
    }

    /// Round-trips through encode/decode and asserts exactness: equal
    /// bytes on re-encode (byte-determinism makes this a full state
    /// comparison), plus the observable invariants.
    fn assert_state_round_trips(r: &Instance) -> Instance {
        let mut buf = Vec::new();
        r.encode_state(&mut buf);
        let mut reader = Reader::new(&buf);
        let decoded = Instance::decode_state(r.schema().clone(), &mut reader).expect("decode");
        reader.expect_end().expect("whole payload consumed");
        let mut buf2 = Vec::new();
        decoded.encode_state(&mut buf2);
        assert_eq!(buf, buf2, "decode ∘ encode is the identity on bytes");
        assert_eq!(decoded.render(true), r.render(true));
        assert_eq!(decoded.canonical_form(), r.canonical_form());
        assert_eq!(decoded.slot_bound(), r.slot_bound());
        assert_eq!(decoded.len(), r.len());
        decoded
    }

    #[test]
    fn exact_state_round_trips_through_bytes() {
        let mut r = Instance::parse(
            schema_abc(),
            "a1 b1 c1\na1 -  c2\na2 ?x c1\n-  ?x #!\na2 b2 c2",
        )
        .unwrap();
        // interior tombstone + an NEC merge + allocator churn
        r.remove_row(r.nth_row(1));
        let n1 = r.value(r.nth_row(1), AttrId(1)).as_null().unwrap();
        let extra = r.fresh_null();
        r.add_nec(n1, extra);
        let decoded = assert_state_round_trips(&r);
        // the decoded twin behaves identically under further mutation:
        // same fresh null ids, same slot reuse, same mark bindings
        let mut a = r.clone();
        let mut b = decoded;
        assert_eq!(a.fresh_null(), b.fresh_null());
        assert_eq!(
            a.add_row(&["a1", "?x", "-"]).unwrap(),
            b.add_row(&["a1", "?x", "-"]).unwrap()
        );
        assert_eq!(a.render(true), b.render(true));
    }

    #[test]
    fn empty_and_unbounded_instances_round_trip() {
        assert_state_round_trips(&Instance::new(schema_abc()));
        let schema = Schema::builder("People")
            .attribute_unbounded("name")
            .attribute("status", ["married", "single"])
            .build()
            .unwrap();
        let mut r = Instance::new(schema);
        r.add_row(&["John", "married"]).unwrap();
        r.add_row(&["Mary", "-"]).unwrap();
        assert_state_round_trips(&r);
    }

    #[test]
    fn decode_rejects_schema_mismatches_and_garbage() {
        let r = Instance::parse(schema_abc(), "a1 b1 c1\na1 - c2").unwrap();
        let mut buf = Vec::new();
        r.encode_state(&mut buf);
        // decoding under a different schema trips the symbol-table check
        let other = Schema::builder("R")
            .attribute("A", ["z9", "z8"])
            .attribute("B", ["b1", "b2", "b3"])
            .attribute("C", ["c1", "c2"])
            .build()
            .unwrap();
        assert!(Instance::decode_state(other, &mut Reader::new(&buf)).is_err());
        // truncated payloads are typed errors, not panics
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            assert!(
                Instance::decode_state(schema_abc(), &mut Reader::new(&buf[..cut])).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn compact_remaps_in_order() {
        let mut r =
            Instance::parse(schema_abc(), "a1 b1 c1\na1 b2 c2\na2 b3 c1\na2 b1 c2").unwrap();
        let keep0 = r.nth_row(0);
        let keep2 = r.nth_row(2);
        let keep3 = r.nth_row(3);
        r.remove_row(r.nth_row(1));
        let before = r.canonical_form();
        let moved = r.compact();
        assert_eq!(r.canonical_form(), before, "compaction preserves content");
        assert_eq!(r.slot_bound(), r.len());
        assert_eq!(moved, vec![(keep2, RowId(1)), (keep3, RowId(2))]);
        assert!(r.is_live(keep0), "unmoved rows keep their ids");
        // idempotent once dense
        assert!(r.compact().is_empty());
    }
}
