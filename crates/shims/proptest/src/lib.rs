//! Offline shim for the slice of the `proptest` API this workspace's
//! property tests use.
//!
//! Semantics: a [`Strategy`] is a deterministic sampler. The
//! [`proptest!`] macro expands each property into a `#[test]` that
//! samples its strategies from a per-test seeded RNG and runs the body
//! up to `ProptestConfig::cases` times; `prop_assume!` rejects a case
//! (another is drawn, up to a bounded number of attempts), and the
//! `prop_assert*` macros panic with context on failure. There is **no
//! shrinking** — failures report the concrete sampled values instead.
//! Case streams are deterministic per test name, so failures reproduce
//! exactly; set `PROPTEST_CASES` to raise or lower the case count
//! globally.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// How many filter retries before a strategy gives up.
const FILTER_RETRIES: usize = 1000;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (overridden by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Rejection marker returned by `prop_assume!`.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Builds the deterministic RNG for one property.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<R, F>(self, _reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { inner: self, pred }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth and builds one level on top; leaves are mixed in
    /// probabilistically at every level so sampled structures span the
    /// whole depth range.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(current).boxed();
            let l = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.gen_range(0..4u32) == 0 {
                    l.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        current
    }

    /// Type-erased, clonable form.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
    }
}

/// Type-erased strategy (clonable, shareable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected {FILTER_RETRIES} consecutive samples");
    }
}

/// A strategy always yielding a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Weighted choice among boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: 'static> WeightedUnion<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<T: 'static> Strategy for WeightedUnion<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled range")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification: an exact `usize` or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Weighted or unweighted alternation over same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// `assert!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Declares property tests; see the crate docs for runner semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for(stringify!($name));
                let strategies = ($($crate::Strategy::boxed($strategy),)+);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($crate::Strategy::sample($arg, &mut rng),)+)
                    };
                    // The closure exists so `prop_assume!` can early-return
                    // a rejection out of the case body.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::Rejected> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted > 0,
                    "property {} rejected every generated case ({} attempts)",
                    stringify!($name),
                    attempts,
                );
            }
        )*
    };
}

/// The common imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u32> {
        prop_oneof![
            3 => 0..10u32,
            1 => (100..110u32).prop_map(|v| v),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17usize, y in arb_small()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 10 || (100..110).contains(&y));
        }

        #[test]
        fn assume_rejects_cases(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_and_tuples(v in collection::vec((0..5u32, 0..5u32), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn filters_apply(x in (0..100u32).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0..10u32)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::rng_for("recursive_strategies_terminate_and_vary");
        let depths: Vec<u32> = (0..200).map(|_| depth(&strat.sample(&mut rng))).collect();
        assert!(depths.contains(&0), "leaves occur");
        assert!(depths.iter().any(|d| *d >= 2), "deep trees occur");
        assert!(depths.iter().all(|d| *d <= 4), "depth bounded");
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = crate::rng_for("just");
        assert_eq!(Just(42u8).sample(&mut rng), 42);
    }
}
