//! Offline shim for the slice of the `criterion` API this workspace's
//! benches use: benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark closure is warmed up once, then
//! timed over adaptively batched iterations until `CRITERION_SAMPLES`
//! samples (default 15) are collected or `CRITERION_MAX_MS` (default
//! 1500 ms) of wall time is spent, whichever comes first. The median,
//! minimum, and sample count are printed per benchmark, and the median
//! is retained on the [`Criterion`] object for programmatic export (see
//! [`Criterion::results`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (accepted and ignored beyond display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, param: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting batched samples (see the module docs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let max_samples: usize = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        let budget = Duration::from_millis(
            std::env::var("CRITERION_MAX_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1500),
        );
        // Warmup + batch sizing: target ≥ ~1ms per sample so the clock
        // resolution never dominates.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;
        let started = Instant::now();
        while self.samples.len() < max_samples && started.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s.get(s.len() / 2).copied().unwrap_or(Duration::ZERO)
    }
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&mut self.results, &id.id, f);
        self
    }

    /// `(full benchmark id, median)` pairs collected so far.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

fn run_one<F: FnMut(&mut Bencher)>(results: &mut Vec<(String, Duration)>, id: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let median = b.median();
    let min = b.samples.iter().min().copied().unwrap_or(Duration::ZERO);
    println!(
        "bench {id:<40} median {:>12?}  min {:>12?}  ({} samples)",
        median,
        min,
        b.samples.len()
    );
    results.push((id.to_string(), median));
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group throughput (display only in this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&mut self.criterion.results, &full, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&mut self.criterion.results, &full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_and_record() {
        std::env::set_var("CRITERION_SAMPLES", "3");
        std::env::set_var("CRITERION_MAX_MS", "50");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        c.bench_function("lone", |b| b.iter(|| 1 + 1));
        let ids: Vec<&str> = c.results().iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["g/f/10", "lone"]);
    }
}
