//! Offline shim for the slice of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so the workspace
//! vendors the handful of entry points its generators and tests rely
//! on: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen_range` / `gen_bool` / `gen`, and
//! [`seq::SliceRandom`]'s `shuffle` / `choose`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! given a seed, statistically solid for workload synthesis, and **not**
//! a cryptographic RNG. Streams differ from upstream `rand`, which is
//! fine: every consumer in this repository treats the stream as an
//! implementation detail behind a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire multiply-shift; the tiny modulo bias of the
                // plain product is removed by widening to 128 bits.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                start + v as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Generates one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_one(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_one(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        // small ranges hit every value
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.23..0.27).contains(&rate), "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "astronomically unlikely to be a no-op");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
