//! Property-based tests for the System-C logic substrate.

use fdi_logic::derive::{closure, derive_augmentation, prove, Derivation};
use fdi_logic::eval::{is_tautology_2v, Compiled};
use fdi_logic::formula::Formula;
use fdi_logic::implication::{
    closed_form_matches_generic, counterexample, infers, weakly_infers, InferenceMode, Statement,
};
use fdi_logic::truth::Truth;
use fdi_logic::var::{Assignment, VarId, VarSet};
use proptest::prelude::*;

const VARS: usize = 4;

fn arb_truth() -> impl Strategy<Value = Truth> {
    prop_oneof![Just(Truth::True), Just(Truth::False), Just(Truth::Unknown)]
}

fn arb_assignment() -> impl Strategy<Value = Assignment> {
    proptest::collection::vec(arb_truth(), VARS).prop_map(Assignment::new)
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = (0..VARS as u32).prop_map(|i| Formula::var(VarId(i)));
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            inner.clone().prop_map(Formula::nec),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn arb_varset_nonempty() -> impl Strategy<Value = VarSet> {
    (1u64..(1 << VARS)).prop_map(VarSet)
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    (arb_varset_nonempty(), arb_varset_nonempty()).prop_map(|(l, r)| Statement::new(l, r))
}

/// Classical two-valued evaluation of a non-modal formula.
fn eval_bool(f: &Formula, a: &Assignment) -> bool {
    match f {
        Formula::Var(v) => a.get(*v).is_true(),
        Formula::Not(p) => !eval_bool(p, a),
        Formula::Nec(p) => eval_bool(p, a),
        Formula::And(p, q) => eval_bool(p, a) && eval_bool(q, a),
        Formula::Or(p, q) => eval_bool(p, a) || eval_bool(q, a),
        Formula::Implies(p, q) => !eval_bool(p, a) || eval_bool(q, a),
    }
}

/// All boolean completions of a three-valued assignment.
fn completions(a: &Assignment) -> Vec<Assignment> {
    let unknown_positions: Vec<usize> = (0..a.len())
        .filter(|i| a.get(VarId(*i as u32)).is_unknown())
        .collect();
    let mut out = Vec::new();
    for code in 0..(1u64 << unknown_positions.len()) {
        let mut c = a.clone();
        for (bit, pos) in unknown_positions.iter().enumerate() {
            c.set(VarId(*pos as u32), Truth::from(code & (1 << bit) != 0));
        }
        out.push(c);
    }
    out
}

proptest! {
    /// Desugaring implications must not change V.
    #[test]
    fn desugaring_preserves_v(f in arb_formula(), a in arb_assignment()) {
        let direct = Compiled::new(&f).eval(&a);
        let desugared = Compiled::new(&f.desugar()).eval(&a);
        prop_assert_eq!(direct, desugared);
    }

    /// Kleene evaluation information-approximates V on non-modal
    /// formulas: rule 1 only ever upgrades `unknown` to `true`, and the
    /// Kleene connectives are monotone in the information ordering. (`∇`
    /// is excluded: it maps `unknown` to `false` and is not monotone, so
    /// a rule-1 promotion below a `∇` can flip the verdict.)
    #[test]
    fn kleene_approximates_v(f in arb_formula(), a in arb_assignment()) {
        prop_assume!(!f.is_modal());
        let c = Compiled::new(&f);
        prop_assert!(c.eval_kleene(&a).approximates(c.eval(&a)));
    }

    /// On two-valued assignments V collapses to classical evaluation
    /// (with ∇ the identity), for arbitrary formulas including modal ones.
    #[test]
    fn v_is_classical_on_definite_assignments(f in arb_formula(), code in 0u64..(1 << VARS)) {
        let a = Assignment::new(
            (0..VARS).map(|i| Truth::from(code & (1 << i) != 0)).collect(),
        );
        let v = Compiled::new(&f).eval(&a);
        prop_assert_eq!(v, Truth::from(eval_bool(&f, &a)));
    }

    /// For non-modal formulas, a definite V verdict is sound for every
    /// completion of the assignment (the least-extension reading of §2).
    #[test]
    fn definite_v_verdicts_are_completion_sound(f in arb_formula(), a in arb_assignment()) {
        prop_assume!(!f.is_modal());
        let v = Compiled::new(&f).eval(&a);
        if !v.is_unknown() {
            for c in completions(&a) {
                prop_assert_eq!(Truth::from(eval_bool(&f, &c)), v);
            }
        }
    }

    /// A rule-1 tautology evaluates to true under every assignment.
    #[test]
    fn tautologies_are_true_everywhere(f in arb_formula(), a in arb_assignment()) {
        if is_tautology_2v(&f) {
            prop_assert_eq!(Compiled::new(&f).eval(&a), Truth::True);
        }
    }

    /// The closed-form statement evaluator matches the generic compiled
    /// evaluator on every assignment.
    #[test]
    fn statement_closed_form_is_exact(s in arb_statement()) {
        prop_assert!(closed_form_matches_generic(s));
    }

    /// Proof search is sound and complete w.r.t. semantic inference.
    #[test]
    fn prove_iff_infers(
        premises in proptest::collection::vec(arb_statement(), 0..4),
        goal in arb_statement(),
    ) {
        let derivable = prove(&premises, goal);
        let inferred = infers(&premises, goal);
        prop_assert_eq!(derivable.is_some(), inferred);
        if let Some(d) = derivable {
            prop_assert_eq!(d.statement, goal);
            prop_assert!(d.verify(&premises).is_ok());
        }
    }

    /// Semantic inference coincides with the closure construction: the
    /// goal is inferred iff its consequent lies in the antecedent's
    /// closure.
    #[test]
    fn inference_matches_closure(
        premises in proptest::collection::vec(arb_statement(), 0..4),
        goal in arb_statement(),
    ) {
        let closed = closure(goal.lhs, &premises);
        prop_assert_eq!(infers(&premises, goal), goal.rhs.is_subset(closed));
    }

    /// Weak inference is implied by strong inference whenever the goal
    /// itself is weakly entailed — here we check the contrapositive
    /// direction that every weak counterexample is also logged as a
    /// failure of weak inference, and that strong counterexamples exist
    /// whenever closure fails.
    #[test]
    fn counterexamples_are_genuine(
        premises in proptest::collection::vec(arb_statement(), 0..4),
        goal in arb_statement(),
    ) {
        if let Some(a) = counterexample(&premises, goal, InferenceMode::Strong) {
            for p in &premises {
                prop_assert!(p.normalized().eval(&a).is_true());
            }
            prop_assert!(!goal.normalized().eval(&a).is_true());
        }
        if let Some(a) = counterexample(&premises, goal, InferenceMode::Weak) {
            for p in &premises {
                prop_assert!(p.normalized().eval(&a).is_not_false());
            }
            prop_assert!(goal.normalized().eval(&a).is_false());
        }
    }

    /// Weak inference never holds where strong inference fails on
    /// two-valued witnesses: a fully definite strong counterexample is
    /// also a weak counterexample, so weak ⊆ strong on these goals.
    #[test]
    fn weak_inference_implies_strong_inference(
        premises in proptest::collection::vec(arb_statement(), 0..4),
        goal in arb_statement(),
    ) {
        // If the strong counterexample search finds a *two-valued*
        // assignment, weak inference must fail too (definite premises
        // true ⇒ not false; definite goal not true ⇒ false).
        if let Some(a) = counterexample(&premises, goal, InferenceMode::Strong) {
            if a.values().iter().all(|t| !t.is_unknown()) {
                prop_assert!(!weakly_infers(&premises, goal));
            }
        }
    }

    /// Augmentation derived from I1–I3 verifies and concludes XW ⇒ YW.
    #[test]
    fn derived_augmentation_is_valid(s in arb_statement(), w in arb_varset_nonempty()) {
        let d = derive_augmentation(Derivation::hypothesis(s), w);
        prop_assert_eq!(
            d.statement,
            Statement::new(s.lhs.union(w), s.rhs.union(w))
        );
        prop_assert!(d.verify(&[s]).is_ok());
    }
}
