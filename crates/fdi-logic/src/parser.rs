//! A small recursive-descent parser for System-C formulas.
//!
//! Grammar (standard precedence, implication right-associative):
//!
//! ```text
//! implies := or ( "=>" implies )?
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | "nec" unary | "(" implies ")" | IDENT
//! ```
//!
//! Accepted spellings: `!`/`~`/`not` for negation, `&`/`and` for
//! conjunction, `|`/`or` for disjunction, `=>`/`->` for implication, and
//! `nec` for the modal necessity operator `∇`.

use crate::formula::Formula;
use crate::var::VarTable;
use std::fmt;

/// Error produced when a formula fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Not,
    And,
    Or,
    Implies,
    Nec,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '!' | '~' => {
                tokens.push((i, Token::Not));
                i += 1;
            }
            '&' => {
                tokens.push((i, Token::And));
                i += 1;
                if i < bytes.len() && bytes[i] == b'&' {
                    i += 1;
                }
            }
            '|' => {
                tokens.push((i, Token::Or));
                i += 1;
                if i < bytes.len() && bytes[i] == b'|' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            '=' | '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push((i, Token::Implies));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: format!("expected '{c}>' to form an implication arrow"),
                    });
                }
            }
            _ if c.is_alphanumeric() || c == '_' || c == '#' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric() || d == '_' || d == '#' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let token = match word.to_ascii_lowercase().as_str() {
                    "not" => Token::Not,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "nec" | "necessarily" => Token::Nec,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push((start, token));
            }
            _ => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    table: &'a mut VarTable,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next_pos(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Token::Implies) {
            self.bump();
            let rhs = self.parse_implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some(&Token::And) {
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        let position = self.next_pos();
        match self.bump() {
            Some(Token::Not) => Ok(self.parse_unary()?.not()),
            Some(Token::Nec) => Ok(self.parse_unary()?.nec()),
            Some(Token::LParen) => {
                let inner = self.parse_implies()?;
                let position = self.next_pos();
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError {
                        position,
                        message: "expected ')'".into(),
                    }),
                }
            }
            Some(Token::Ident(name)) => Ok(Formula::var(self.table.intern(&name))),
            other => Err(ParseError {
                position,
                message: format!("expected a formula, found {other:?}"),
            }),
        }
    }
}

/// Parses `input` into a [`Formula`], interning variable names into
/// `table` (names already present keep their ids, so several formulas can
/// share one table).
pub fn parse_formula(input: &str, table: &mut VarTable) -> Result<Formula, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        table,
        input_len: input.len(),
    };
    let formula = parser.parse_implies()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError {
            position: parser.next_pos(),
            message: "trailing input after formula".into(),
        });
    }
    Ok(formula)
}

/// Parses a formula with a fresh variable table; returns both.
pub fn parse_standalone(input: &str) -> Result<(Formula, VarTable), ParseError> {
    let mut table = VarTable::new();
    let formula = parse_formula(input, &mut table)?;
    Ok((formula, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        let (f, t) = parse_standalone(s).expect("parse");
        f.render(&t)
    }

    #[test]
    fn parses_variables_and_connectives() {
        assert_eq!(roundtrip("A & B | C"), "A & B | C");
        assert_eq!(roundtrip("A & (B | C)"), "A & (B | C)");
        assert_eq!(roundtrip("!A | B"), "!A | B");
        assert_eq!(roundtrip("not A or B"), "!A | B");
        assert_eq!(roundtrip("A and B"), "A & B");
    }

    #[test]
    fn implication_is_right_associative() {
        assert_eq!(roundtrip("A => B => C"), "A => B => C");
        assert_eq!(roundtrip("(A => B) => C"), "(A => B) => C");
        assert_eq!(roundtrip("A -> B"), "A => B");
    }

    #[test]
    fn nec_binds_tightly() {
        assert_eq!(roundtrip("nec A & B"), "nec A & B");
        let (f, _) = parse_standalone("nec A & B").unwrap();
        // parses as (nec A) & B
        assert!(matches!(f, Formula::And(..)));
        assert_eq!(roundtrip("nec (A & B)"), "nec (A & B)");
    }

    #[test]
    fn shared_table_reuses_ids() {
        let mut t = VarTable::new();
        let f1 = parse_formula("A & B", &mut t).unwrap();
        let f2 = parse_formula("B => A", &mut t).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(f1.vars(), f2.vars());
    }

    #[test]
    fn double_ampersand_and_pipe_are_accepted() {
        assert_eq!(roundtrip("A && B || C"), "A & B | C");
    }

    #[test]
    fn attribute_like_identifiers_parse() {
        // the paper's attribute names: E#, SL, D#, CT
        let (f, t) = parse_standalone("E# => SL & D#").unwrap();
        assert_eq!(f.render(&t), "E# => SL & D#");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_standalone("A &").unwrap_err();
        assert_eq!(err.position, 3);
        let err = parse_standalone("A ) B").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse_standalone("A = B").unwrap_err();
        assert!(err.message.contains("implication arrow"));
        let err = parse_standalone("(A & B").unwrap_err();
        assert!(err.message.contains("')'"));
        let err = parse_standalone("A @ B").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_standalone("").is_err());
        assert!(parse_standalone("   ").is_err());
    }
}
