//! Implicational statements `X ⇒ Y` and logical inference in System-C.
//!
//! §5 of the paper singles out implicational statements — implications
//! between conjunctions of propositional variables — because they are the
//! logical image of functional dependencies. A statement `f` is
//! **logically inferred** by a set `F` iff every assignment making all of
//! `F` true (under `V`) also makes `f` true; **weak** logical inference
//! relaxes both sides to "not false".
//!
//! For implicational statements `V` has a closed form (verified against
//! the generic evaluator in the tests):
//!
//! * if `Y ⊆ X`, the statement is a two-valued tautology, so rule 1 gives
//!   `V = true` under every assignment;
//! * otherwise `V(X ⇒ Y, a) = Kleene(¬⋀X ∨ ⋀Y)` — no proper subformula of
//!   a (desugared) implicational statement is ever a two-valued tautology.
//!
//! **Normalization.** `V` distinguishes `AC ⇒ BC` from `AC ⇒ B`: under
//! `a(A) = a(C) = unknown`, `a(B) = true` the former is `unknown` and the
//! latter `true`, because the consequent re-tests the unknown antecedent
//! variable. Functional dependencies do *not* make this distinction
//! (`AC → BC` and `AC → B` hold in exactly the same instances), and
//! Proposition 1 of the paper accordingly assumes `X ∩ Y = ∅`. The
//! Lemma-3/4 correspondence therefore pairs FDs with **normalized**
//! statements (`rhs ∩ lhs = ∅` unless trivial), and logical inference
//! ([`infers`], [`weakly_infers`]) normalizes premises and goal before
//! evaluating — otherwise Armstrong's augmentation rule would be unsound
//! (`A ⇒ B ⊭ AC ⇒ BC` under literal `V`, yet `AC → BC` follows from
//! `A → B`).

use crate::eval::Compiled;
use crate::formula::Formula;
use crate::truth::Truth;
use crate::var::{Assignment, VarId, VarSet, VarTable};
use std::fmt;

/// An implicational statement `X ⇒ Y` between conjunctive terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Statement {
    /// The antecedent conjunction `X`.
    pub lhs: VarSet,
    /// The consequent conjunction `Y`.
    pub rhs: VarSet,
}

impl Statement {
    /// Creates `X ⇒ Y`.
    pub fn new(lhs: VarSet, rhs: VarSet) -> Statement {
        Statement { lhs, rhs }
    }

    /// Returns `true` iff `Y ⊆ X`, in which case the statement is a
    /// two-valued tautology (and hence true under every assignment by
    /// rule 1).
    pub fn is_trivial(self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// The FD-faithful normal form: trivial statements are kept as-is
    /// (they are true everywhere), otherwise the antecedent variables are
    /// removed from the consequent so that `rhs ∩ lhs = ∅`.
    ///
    /// See the module documentation for why inference must normalize.
    #[must_use]
    pub fn normalized(self) -> Statement {
        if self.is_trivial() {
            self
        } else {
            Statement::new(self.lhs, self.rhs.difference(self.lhs))
        }
    }

    /// Returns `true` iff the statement is already in normal form.
    pub fn is_normalized(self) -> bool {
        self.is_trivial() || self.rhs.is_disjoint(self.lhs)
    }

    /// All variables mentioned by the statement.
    pub fn vars(self) -> VarSet {
        self.lhs.union(self.rhs)
    }

    /// The statement as a System-C formula `⋀X ⇒ ⋀Y`.
    ///
    /// # Panics
    /// Panics if either side is empty (the paper's conjunctive terms are
    /// non-empty).
    pub fn to_formula(self) -> Formula {
        Formula::conj(self.lhs).implies(Formula::conj(self.rhs))
    }

    /// Closed-form `V(X ⇒ Y, a)`.
    pub fn eval(self, assignment: &Assignment) -> Truth {
        if self.is_trivial() {
            return Truth::True;
        }
        let x = Truth::all(self.lhs.iter().map(|v| assignment.get(v)));
        let y = Truth::all(self.rhs.iter().map(|v| assignment.get(v)));
        x.implies(y)
    }

    /// Renders with attribute names, e.g. `AB => C`.
    pub fn render(self, table: &VarTable) -> String {
        format!(
            "{} => {}",
            table.render_set(self.lhs),
            table.render_set(self.rhs)
        )
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} => {}", self.lhs, self.rhs)
    }
}

/// Inference mode: the paper's two notions of logical inference (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferenceMode {
    /// `a(fᵢ) = true` for all premises must force `a(f) = true`.
    Strong,
    /// `a(fᵢ) ≠ false` for all premises must force `a(f) ≠ false`.
    Weak,
}

fn premises_hold(premises: &[Statement], a: &Assignment, mode: InferenceMode) -> bool {
    premises.iter().all(|p| match mode {
        InferenceMode::Strong => p.eval(a).is_true(),
        InferenceMode::Weak => p.eval(a).is_not_false(),
    })
}

fn goal_holds(goal: Statement, a: &Assignment, mode: InferenceMode) -> bool {
    match mode {
        InferenceMode::Strong => goal.eval(a).is_true(),
        InferenceMode::Weak => goal.eval(a).is_not_false(),
    }
}

/// Searches for an assignment under which all `premises` hold (per
/// `mode`) but `goal` does not; `None` means `goal` is logically
/// inferred.
///
/// Premises and goal are [normalized](Statement::normalized) first (the
/// FD-faithful reading — see the module documentation), then the `3^n`
/// assignments of the variables actually mentioned are enumerated.
///
/// # Panics
/// Panics if more than 16 distinct variables are mentioned.
pub fn counterexample(
    premises: &[Statement],
    goal: Statement,
    mode: InferenceMode,
) -> Option<Assignment> {
    let premises: Vec<Statement> = premises.iter().map(|p| p.normalized()).collect();
    let premises = premises.as_slice();
    let goal = goal.normalized();
    let vars: VarSet = premises
        .iter()
        .fold(goal.vars(), |acc, p| acc.union(p.vars()));
    let var_list: Vec<VarId> = vars.iter().collect();
    let n = var_list.len();
    assert!(
        n <= 16,
        "logical-inference enumeration capped at 16 variables"
    );
    let width = var_list.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut assignment = Assignment::unknown(width);
    for mut code in 0..3u64.pow(n as u32) {
        for v in &var_list {
            assignment.set(*v, Truth::ALL[(code % 3) as usize]);
            code /= 3;
        }
        if premises_hold(premises, &assignment, mode) && !goal_holds(goal, &assignment, mode) {
            return Some(assignment);
        }
    }
    None
}

/// Strong logical inference: `F ⊨ f` in System-C, modulo normalization.
pub fn infers(premises: &[Statement], goal: Statement) -> bool {
    counterexample(premises, goal, InferenceMode::Strong).is_none()
}

/// Weak logical inference (`a(f) ≠ false` preserved), modulo
/// normalization.
pub fn weakly_infers(premises: &[Statement], goal: Statement) -> bool {
    counterexample(premises, goal, InferenceMode::Weak).is_none()
}

/// Cross-checks the closed-form [`Statement::eval`] against the generic
/// compiled System-C evaluator on every assignment; used by tests and the
/// harness self-checks.
pub fn closed_form_matches_generic(stmt: Statement) -> bool {
    if stmt.lhs.is_empty() || stmt.rhs.is_empty() {
        return true; // to_formula would panic; closed form defined anyway
    }
    let compiled = Compiled::new(&stmt.to_formula());
    let vars: Vec<VarId> = stmt.vars().iter().collect();
    let width = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut a = Assignment::unknown(width);
    for mut code in 0..3u64.pow(vars.len() as u32) {
        for v in &vars {
            a.set(*v, Truth::ALL[(code % 3) as usize]);
            code /= 3;
        }
        if compiled.eval(&a) != stmt.eval(&a) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn set(ids: &[u32]) -> VarSet {
        ids.iter().map(|i| VarId(*i)).collect()
    }

    fn st(lhs: &[u32], rhs: &[u32]) -> Statement {
        Statement::new(set(lhs), set(rhs))
    }

    #[test]
    fn trivial_statements_are_always_true() {
        let s = st(&[0, 1], &[0]);
        assert!(s.is_trivial());
        for a in Assignment::enumerate_all(2) {
            assert_eq!(s.eval(&a), Truth::True);
        }
    }

    #[test]
    fn closed_form_matches_generic_evaluator() {
        let cases = [
            st(&[0], &[1]),
            st(&[0, 1], &[2]),
            st(&[0], &[1, 2]),
            st(&[0, 1], &[1, 2]),
            st(&[0, 1, 2], &[3]),
            st(&[0], &[0]),
            st(&[0, 1], &[0, 1]),
        ];
        for s in cases {
            assert!(closed_form_matches_generic(s), "statement {s}");
        }
    }

    #[test]
    fn strong_inference_transitivity() {
        let f1 = st(&[0], &[1]);
        let f2 = st(&[1], &[2]);
        let goal = st(&[0], &[2]);
        assert!(infers(&[f1, f2], goal));
    }

    #[test]
    fn strong_inference_union_and_decomposition() {
        let f1 = st(&[0], &[1]);
        let f2 = st(&[0], &[2]);
        assert!(infers(&[f1, f2], st(&[0], &[1, 2])));
        assert!(infers(&[st(&[0], &[1, 2])], st(&[0], &[1])));
        assert!(infers(&[st(&[0], &[1, 2])], st(&[0], &[2])));
    }

    #[test]
    fn strong_inference_augmentation() {
        // X ⇒ Y gives XZ ⇒ YZ (after normalization — see below).
        assert!(infers(&[st(&[0], &[1])], st(&[0, 2], &[1, 2])));
    }

    #[test]
    fn literal_v_distinguishes_unnormalized_statements() {
        // AC ⇒ BC vs AC ⇒ B at a(A)=U, a(B)=T, a(C)=U: literal V yields
        // unknown for the former and true for the latter. FDs do not make
        // this distinction, which is why inference normalizes.
        use Truth::*;
        let raw = st(&[0, 2], &[1, 2]);
        let norm = raw.normalized();
        assert_eq!(norm, st(&[0, 2], &[1]));
        let mut a = Assignment::unknown(3);
        a.set(v(1), True);
        assert_eq!(raw.eval(&a), Unknown);
        assert_eq!(norm.eval(&a), True);
        // Trivial statements normalize to themselves.
        assert_eq!(st(&[0, 1], &[1]).normalized(), st(&[0, 1], &[1]));
        assert!(st(&[0, 1], &[1]).is_normalized());
        assert!(!raw.is_normalized());
    }

    #[test]
    fn non_inferences_have_counterexamples() {
        let f1 = st(&[0], &[1]);
        let goal = st(&[1], &[0]);
        let cex = counterexample(&[f1], goal, InferenceMode::Strong).expect("counterexample");
        assert!(f1.eval(&cex).is_true());
        assert!(!goal.eval(&cex).is_true());
        assert!(!infers(&[f1], goal));
    }

    #[test]
    fn weak_inference_is_weaker_than_strong_for_transitivity() {
        // §6 of the paper: transitivity FAILS under weak inference.
        // a(A)=T, a(B)=U, a(C)=F: A⇒B is unknown (≠ false), B⇒C is
        // unknown (≠ false), but A⇒C is false.
        let f1 = st(&[0], &[1]);
        let f2 = st(&[1], &[2]);
        let goal = st(&[0], &[2]);
        assert!(!weakly_infers(&[f1, f2], goal));
        let cex = counterexample(&[f1, f2], goal, InferenceMode::Weak).expect("counterexample");
        assert!(f1.eval(&cex).is_not_false());
        assert!(f2.eval(&cex).is_not_false());
        assert!(cex.get(v(2)).is_false() || f1.eval(&cex).is_unknown());
        assert!(goal.eval(&cex).is_false());
    }

    #[test]
    fn weak_inference_still_validates_reflexivity_and_decomposition() {
        assert!(weakly_infers(&[], st(&[0, 1], &[0])));
        assert!(weakly_infers(&[st(&[0], &[1, 2])], st(&[0], &[1])));
    }

    #[test]
    fn strong_inference_implies_weak_holds_for_these_samples() {
        // Not a theorem in general (different premise filters), but for
        // single-premise decomposition-style inferences both hold; sanity
        // check a few.
        let samples = [
            (vec![st(&[0], &[1, 2])], st(&[0], &[1])),
            (vec![st(&[0, 1], &[2])], st(&[0, 1, 3], &[2, 3])),
        ];
        for (premises, goal) in samples {
            assert!(infers(&premises, goal));
            assert!(weakly_infers(&premises, goal));
        }
    }

    #[test]
    fn render_uses_names() {
        let table = VarTable::from_names(["A", "B", "C"]);
        assert_eq!(st(&[0, 1], &[2]).render(&table), "AB => C");
    }

    #[test]
    fn eval_of_definite_assignments_matches_boolean_implication() {
        let s = st(&[0], &[1]);
        for a in Assignment::enumerate_boolean(2) {
            let expected = Truth::from(!a.get(v(0)).is_true() || a.get(v(1)).is_true());
            assert_eq!(s.eval(&a), expected);
        }
    }
}
