//! Well-formed formulas of System-C.
//!
//! System-C (§5, after [Bertram 73]) extends classical propositional logic
//! with the unary modal operator `∇` ("necessarily true"). Implication is
//! defined, not primitive: `P ⇒ Q := ¬P ∨ Q`; we keep it as an AST node for
//! faithful display but desugar it during evaluation.

use crate::var::{VarId, VarSet, VarTable};
use std::fmt;

/// A well-formed formula (wff) of System-C.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// A propositional variable.
    Var(VarId),
    /// Negation `¬P`.
    Not(Box<Formula>),
    /// Conjunction `P ∧ Q`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `P ∨ Q`.
    Or(Box<Formula>, Box<Formula>),
    /// Defined implication `P ⇒ Q` (sugar for `¬P ∨ Q`).
    Implies(Box<Formula>, Box<Formula>),
    /// The modal necessity operator `∇P` ("necessarily true").
    Nec(Box<Formula>),
}

impl Formula {
    /// A variable leaf.
    pub fn var(v: VarId) -> Formula {
        Formula::Var(v)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// Implication (kept as a node; semantically `¬self ∨ rhs`).
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Necessity.
    pub fn nec(self) -> Formula {
        Formula::Nec(Box::new(self))
    }

    /// The conjunction `v₁ ∧ v₂ ∧ …` of a non-empty variable set, with
    /// variables in increasing id order (left-nested).
    ///
    /// # Panics
    /// Panics if `set` is empty — the paper's conjunctive terms are
    /// non-empty by construction.
    pub fn conj(set: VarSet) -> Formula {
        let mut iter = set.iter();
        let first = iter
            .next()
            .expect("conjunctive term must contain at least one variable");
        let mut acc = Formula::Var(first);
        for v in iter {
            acc = acc.and(Formula::Var(v));
        }
        acc
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> VarSet {
        match self {
            Formula::Var(v) => VarSet::singleton(*v),
            Formula::Not(p) | Formula::Nec(p) => p.vars(),
            Formula::And(p, q) | Formula::Or(p, q) | Formula::Implies(p, q) => {
                p.vars().union(q.vars())
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::Var(_) => 1,
            Formula::Not(p) | Formula::Nec(p) => 1 + p.size(),
            Formula::And(p, q) | Formula::Or(p, q) | Formula::Implies(p, q) => {
                1 + p.size() + q.size()
            }
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        match self {
            Formula::Var(_) => 1,
            Formula::Not(p) | Formula::Nec(p) => 1 + p.depth(),
            Formula::And(p, q) | Formula::Or(p, q) | Formula::Implies(p, q) => {
                1 + p.depth().max(q.depth())
            }
        }
    }

    /// Returns `true` iff the formula contains a `∇` operator.
    pub fn is_modal(&self) -> bool {
        match self {
            Formula::Var(_) => false,
            Formula::Nec(_) => true,
            Formula::Not(p) => p.is_modal(),
            Formula::And(p, q) | Formula::Or(p, q) | Formula::Implies(p, q) => {
                p.is_modal() || q.is_modal()
            }
        }
    }

    /// Structurally desugars `Implies` nodes into `¬P ∨ Q`.
    pub fn desugar(&self) -> Formula {
        match self {
            Formula::Var(v) => Formula::Var(*v),
            Formula::Not(p) => p.desugar().not(),
            Formula::Nec(p) => p.desugar().nec(),
            Formula::And(p, q) => p.desugar().and(q.desugar()),
            Formula::Or(p, q) => p.desugar().or(q.desugar()),
            Formula::Implies(p, q) => p.desugar().not().or(q.desugar()),
        }
    }

    /// Renders the formula with variable names from `table`.
    pub fn render(&self, table: &VarTable) -> String {
        let mut out = String::new();
        self.render_prec(table, 0, &mut out);
        out
    }

    /// Precedence climbing renderer. Levels: 0 = implies, 1 = or, 2 = and,
    /// 3 = unary.
    fn render_prec(&self, table: &VarTable, level: u8, out: &mut String) {
        let my_level = match self {
            Formula::Implies(..) => 0,
            Formula::Or(..) => 1,
            Formula::And(..) => 2,
            Formula::Not(_) | Formula::Nec(_) | Formula::Var(_) => 3,
        };
        let need_parens = my_level < level;
        if need_parens {
            out.push('(');
        }
        match self {
            Formula::Var(v) => out.push_str(table.name(*v)),
            Formula::Not(p) => {
                out.push('!');
                p.render_prec(table, 3, out);
            }
            Formula::Nec(p) => {
                out.push_str("nec ");
                p.render_prec(table, 3, out);
            }
            Formula::And(p, q) => {
                p.render_prec(table, 2, out);
                out.push_str(" & ");
                q.render_prec(table, 2, out);
            }
            Formula::Or(p, q) => {
                p.render_prec(table, 1, out);
                out.push_str(" | ");
                q.render_prec(table, 1, out);
            }
            Formula::Implies(p, q) => {
                // right-associative: parenthesize a left-nested implication
                p.render_prec(table, 1, out);
                out.push_str(" => ");
                q.render_prec(table, 0, out);
            }
        }
        if need_parens {
            out.push(')');
        }
    }
}

impl fmt::Display for Formula {
    /// Displays with positional variable names (`p0`, `p1`, …). Prefer
    /// [`Formula::render`] when a [`VarTable`] is available.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.vars().iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let table = VarTable::from_names((0..n).map(|i| format!("p{i}")));
        f.write_str(&self.render(&table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (VarTable, Formula, Formula, Formula) {
        let mut t = VarTable::new();
        let a = Formula::var(t.intern("A"));
        let b = Formula::var(t.intern("B"));
        let c = Formula::var(t.intern("C"));
        (t, a, b, c)
    }

    #[test]
    fn vars_are_collected() {
        let (_, a, b, c) = abc();
        let f = a.clone().and(b).implies(c.or(a.not()));
        let vs: Vec<u32> = f.vars().iter().map(|v| v.0).collect();
        assert_eq!(vs, vec![0, 1, 2]);
    }

    #[test]
    fn conj_builds_left_nested_conjunction() {
        let set: VarSet = [VarId(0), VarId(1), VarId(2)].into_iter().collect();
        let f = Formula::conj(set);
        assert_eq!(f.size(), 5); // 3 vars + 2 ands
        assert_eq!(f.vars(), set);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn conj_of_empty_set_panics() {
        let _ = Formula::conj(VarSet::EMPTY);
    }

    #[test]
    fn desugar_eliminates_implies() {
        let (_, a, b, _) = abc();
        let f = a.clone().implies(b.clone());
        assert_eq!(f.desugar(), a.not().or(b));
    }

    #[test]
    fn size_and_depth() {
        let (_, a, b, _) = abc();
        let f = a.and(b).not().nec();
        assert_eq!(f.size(), 5);
        assert_eq!(f.depth(), 4);
    }

    #[test]
    fn modal_detection() {
        let (_, a, b, _) = abc();
        assert!(!a.clone().and(b.clone()).is_modal());
        assert!(a.and(b.nec()).is_modal());
    }

    #[test]
    fn rendering_uses_minimal_parentheses() {
        let (t, a, b, c) = abc();
        let f = a.clone().or(b.clone()).and(c.clone());
        assert_eq!(f.render(&t), "(A | B) & C");
        let g = a.clone().and(b.clone()).or(c.clone());
        assert_eq!(g.render(&t), "A & B | C");
        let h = a.clone().implies(b.clone().implies(c.clone()));
        assert_eq!(h.render(&t), "A => B => C");
        let i = a.clone().implies(b.clone()).implies(c.clone());
        assert_eq!(i.render(&t), "(A => B) => C");
        let j = a.clone().not().nec();
        assert_eq!(j.render(&t), "nec !A");
        let k = a.or(b).not();
        assert_eq!(k.render(&t), "!(A | B)");
        let _ = c;
    }

    #[test]
    fn display_uses_positional_names() {
        let f = Formula::var(VarId(0)).and(Formula::var(VarId(2)));
        assert_eq!(f.to_string(), "p0 & p2");
    }
}
