//! The I1–I4 derivation system for implicational statements (Lemma 2).
//!
//! Lemma 2 of the paper asserts a sound and complete set of inference
//! rules for implicational statements in System-C. The scan of the rule
//! list is partially garbled; we implement the standard complete system
//! for implicational statements over conjunctive terms:
//!
//! * **I1 (reflexivity)**: if `Y ⊆ X` then `⊢ X ⇒ Y`;
//! * **I2 (transitivity)**: from `X ⇒ Y` and `Y ⇒ Z` infer `X ⇒ Z`;
//! * **I3 (union / additivity)**: from `X ⇒ Y` and `X ⇒ Z` infer `X ⇒ YZ`;
//! * **I4 (decomposition)**: from `X ⇒ YZ` infer `X ⇒ Y` (and `X ⇒ Z`).
//!
//! Armstrong's *augmentation* (`X ⇒ Y ⊢ XW ⇒ YW`) is derivable — see
//! [`derive_augmentation`] — so the two presentations generate the same
//! closure, which is exactly what Theorem 1 needs.
//!
//! [`prove`] is a complete proof-search procedure: it derives any goal
//! that is strongly logically inferred (via the closure construction) and
//! returns an explicit [`Derivation`] tree that [`Derivation::verify`]
//! re-checks step by step. Completeness is validated empirically in the
//! tests against exhaustive [`crate::implication::infers`].

use crate::implication::Statement;
use crate::var::{VarSet, VarTable};
use std::fmt;

/// The rule that concluded a derivation node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// The statement is one of the premises (an element of `F`).
    Hypothesis,
    /// I1: `Y ⊆ X` entails `X ⇒ Y`.
    Reflexivity,
    /// I2: `X ⇒ Y`, `Y ⇒ Z` entail `X ⇒ Z`.
    Transitivity,
    /// I3: `X ⇒ Y`, `X ⇒ Z` entail `X ⇒ YZ`.
    Union,
    /// I4: `X ⇒ YZ` entails `X ⇒ Y` for `Y ⊆ YZ`.
    Decomposition,
}

impl Rule {
    /// Short display tag (`I1`–`I4`, or `hyp`).
    pub fn tag(self) -> &'static str {
        match self {
            Rule::Hypothesis => "hyp",
            Rule::Reflexivity => "I1",
            Rule::Transitivity => "I2",
            Rule::Union => "I3",
            Rule::Decomposition => "I4",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A derivation tree: a statement, the rule that concluded it, and the
/// derivations of the rule's premises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The derived statement.
    pub statement: Statement,
    /// The concluding rule.
    pub rule: Rule,
    /// Derivations of the premises, in rule order.
    pub premises: Vec<Derivation>,
}

impl Derivation {
    /// Leaf: a hypothesis from `F`.
    pub fn hypothesis(statement: Statement) -> Derivation {
        Derivation {
            statement,
            rule: Rule::Hypothesis,
            premises: Vec::new(),
        }
    }

    /// Leaf: reflexivity `X ⇒ Y` with `Y ⊆ X`.
    ///
    /// # Panics
    /// Panics if `rhs ⊄ lhs`.
    pub fn reflexivity(lhs: VarSet, rhs: VarSet) -> Derivation {
        assert!(rhs.is_subset(lhs), "I1 requires Y ⊆ X");
        Derivation {
            statement: Statement::new(lhs, rhs),
            rule: Rule::Reflexivity,
            premises: Vec::new(),
        }
    }

    /// I2: chains `X ⇒ Y` and `Y ⇒ Z`.
    ///
    /// # Panics
    /// Panics if the middle terms do not match.
    pub fn transitivity(first: Derivation, second: Derivation) -> Derivation {
        assert_eq!(
            first.statement.rhs, second.statement.lhs,
            "I2 requires the consequent of the first premise to equal the antecedent of the second"
        );
        let statement = Statement::new(first.statement.lhs, second.statement.rhs);
        Derivation {
            statement,
            rule: Rule::Transitivity,
            premises: vec![first, second],
        }
    }

    /// I3: joins `X ⇒ Y` and `X ⇒ Z` into `X ⇒ YZ`.
    ///
    /// # Panics
    /// Panics if the antecedents differ.
    pub fn union(first: Derivation, second: Derivation) -> Derivation {
        assert_eq!(
            first.statement.lhs, second.statement.lhs,
            "I3 requires equal antecedents"
        );
        let statement = Statement::new(
            first.statement.lhs,
            first.statement.rhs.union(second.statement.rhs),
        );
        Derivation {
            statement,
            rule: Rule::Union,
            premises: vec![first, second],
        }
    }

    /// I4: projects `X ⇒ YZ` onto `X ⇒ rhs` for `rhs ⊆ YZ`.
    ///
    /// # Panics
    /// Panics if `rhs` is not contained in the premise's consequent.
    pub fn decomposition(premise: Derivation, rhs: VarSet) -> Derivation {
        assert!(
            rhs.is_subset(premise.statement.rhs),
            "I4 requires the projected consequent to be contained in the premise's consequent"
        );
        let statement = Statement::new(premise.statement.lhs, rhs);
        Derivation {
            statement,
            rule: Rule::Decomposition,
            premises: vec![premise],
        }
    }

    /// Re-checks every step of the tree: each node must be a valid
    /// instance of its rule, and every hypothesis must belong to
    /// `hypotheses`. Returns the first problem found.
    pub fn verify(&self, hypotheses: &[Statement]) -> Result<(), String> {
        match self.rule {
            Rule::Hypothesis => {
                if !hypotheses.contains(&self.statement) {
                    return Err(format!("{} is not a hypothesis", self.statement));
                }
                if !self.premises.is_empty() {
                    return Err("hypothesis node must have no premises".into());
                }
            }
            Rule::Reflexivity => {
                if !self.statement.rhs.is_subset(self.statement.lhs) {
                    return Err(format!("I1 misapplied: {}", self.statement));
                }
                if !self.premises.is_empty() {
                    return Err("I1 node must have no premises".into());
                }
            }
            Rule::Transitivity => {
                let [p, q] = self.two_premises("I2")?;
                if p.statement.rhs != q.statement.lhs
                    || p.statement.lhs != self.statement.lhs
                    || q.statement.rhs != self.statement.rhs
                {
                    return Err(format!("I2 misapplied at {}", self.statement));
                }
            }
            Rule::Union => {
                let [p, q] = self.two_premises("I3")?;
                if p.statement.lhs != self.statement.lhs
                    || q.statement.lhs != self.statement.lhs
                    || p.statement.rhs.union(q.statement.rhs) != self.statement.rhs
                {
                    return Err(format!("I3 misapplied at {}", self.statement));
                }
            }
            Rule::Decomposition => {
                if self.premises.len() != 1 {
                    return Err("I4 takes exactly one premise".into());
                }
                let p = &self.premises[0];
                if p.statement.lhs != self.statement.lhs
                    || !self.statement.rhs.is_subset(p.statement.rhs)
                {
                    return Err(format!("I4 misapplied at {}", self.statement));
                }
            }
        }
        for p in &self.premises {
            p.verify(hypotheses)?;
        }
        Ok(())
    }

    fn two_premises(&self, rule: &str) -> Result<[&Derivation; 2], String> {
        if self.premises.len() == 2 {
            Ok([&self.premises[0], &self.premises[1]])
        } else {
            Err(format!("{rule} takes exactly two premises"))
        }
    }

    /// Number of inference steps (nodes) in the tree.
    pub fn steps(&self) -> usize {
        1 + self.premises.iter().map(Derivation::steps).sum::<usize>()
    }

    /// Renders the tree as an indented proof, innermost premises first.
    pub fn render(&self, table: &VarTable) -> String {
        let mut out = String::new();
        self.render_into(table, 0, &mut out);
        out
    }

    fn render_into(&self, table: &VarTable, depth: usize, out: &mut String) {
        for p in &self.premises {
            p.render_into(table, depth + 1, out);
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{}  [{}]\n",
            self.statement.render(table),
            self.rule.tag()
        ));
    }
}

/// Derives Armstrong's augmentation `XW ⇒ YW` from a derivation of
/// `X ⇒ Y`, using only I1–I3 — demonstrating that augmentation is
/// admissible in the I-system.
pub fn derive_augmentation(premise: Derivation, w: VarSet) -> Derivation {
    let x = premise.statement.lhs;
    let xw = x.union(w);
    // XW ⇒ X by I1; chain with X ⇒ Y by I2 to get XW ⇒ Y.
    let xw_to_y = Derivation::transitivity(Derivation::reflexivity(xw, x), premise);
    // XW ⇒ W by I1; then I3 joins into XW ⇒ YW.
    Derivation::union(xw_to_y, Derivation::reflexivity(xw, w))
}

/// Computes the closure of `start` under `statements`: the largest `S`
/// with `start ⇒ S` derivable. Iterates to a fixpoint (the input sizes in
/// this crate make the quadratic loop irrelevant; `fdi-core` has the
/// linear-time variant for FDs).
pub fn closure(start: VarSet, statements: &[Statement]) -> VarSet {
    let mut closed = start;
    loop {
        let mut changed = false;
        for s in statements {
            if s.lhs.is_subset(closed) && !s.rhs.is_subset(closed) {
                closed = closed.union(s.rhs);
                changed = true;
            }
        }
        if !changed {
            return closed;
        }
    }
}

/// Complete proof search: derives `goal` from `hypotheses` using I1–I4,
/// or returns `None` when `goal` is not strongly inferred.
///
/// The construction mirrors the classical completeness argument: maintain
/// a derivation of `X ⇒ S` for a growing `S ⊆ X⁺`; each applicable
/// hypothesis `W ⇒ Z` (with `W ⊆ S`) extends it by
/// `I2(I2(X ⇒ S, S ⇒ W), W ⇒ Z)` joined back via I3; finally I1+I2
/// project onto the goal's consequent.
pub fn prove(hypotheses: &[Statement], goal: Statement) -> Option<Derivation> {
    // Trivial goals need no hypotheses.
    if goal.is_trivial() {
        return Some(Derivation::reflexivity(goal.lhs, goal.rhs));
    }
    let x = goal.lhs;
    let mut derived = Derivation::reflexivity(x, x);
    let mut covered = x;
    loop {
        if goal.rhs.is_subset(covered) {
            // X ⇒ S and S ⇒ Y (I1, Y ⊆ S) chain into X ⇒ Y.
            let project = Derivation::reflexivity(covered, goal.rhs);
            return Some(Derivation::transitivity(derived, project));
        }
        let mut progressed = false;
        for h in hypotheses {
            if h.lhs.is_subset(covered) && !h.rhs.is_subset(covered) {
                // X ⇒ W from X ⇒ S via I1 + I2, then X ⇒ Z via I2 with the
                // hypothesis, then X ⇒ S∪Z via I3.
                let to_w = Derivation::transitivity(
                    derived.clone(),
                    Derivation::reflexivity(covered, h.lhs),
                );
                let to_z = Derivation::transitivity(to_w, Derivation::hypothesis(*h));
                covered = covered.union(h.rhs);
                derived = Derivation::union(derived, to_z);
                progressed = true;
            }
        }
        if !progressed {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::{infers, Statement};
    use crate::var::{VarId, VarSet};

    fn set(ids: &[u32]) -> VarSet {
        ids.iter().map(|i| VarId(*i)).collect()
    }

    fn st(lhs: &[u32], rhs: &[u32]) -> Statement {
        Statement::new(set(lhs), set(rhs))
    }

    #[test]
    fn reflexivity_constructs_and_verifies() {
        let d = Derivation::reflexivity(set(&[0, 1]), set(&[1]));
        assert_eq!(d.statement, st(&[0, 1], &[1]));
        assert!(d.verify(&[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "I1 requires")]
    fn reflexivity_rejects_non_subset() {
        let _ = Derivation::reflexivity(set(&[0]), set(&[1]));
    }

    #[test]
    fn transitivity_chains() {
        let f1 = st(&[0], &[1]);
        let f2 = st(&[1], &[2]);
        let d = Derivation::transitivity(Derivation::hypothesis(f1), Derivation::hypothesis(f2));
        assert_eq!(d.statement, st(&[0], &[2]));
        assert!(d.verify(&[f1, f2]).is_ok());
        assert!(d.verify(&[f1]).is_err(), "missing hypothesis is caught");
    }

    #[test]
    fn union_joins_consequents() {
        let f1 = st(&[0], &[1]);
        let f2 = st(&[0], &[2]);
        let d = Derivation::union(Derivation::hypothesis(f1), Derivation::hypothesis(f2));
        assert_eq!(d.statement, st(&[0], &[1, 2]));
        assert!(d.verify(&[f1, f2]).is_ok());
    }

    #[test]
    fn decomposition_projects() {
        let f = st(&[0], &[1, 2]);
        let d = Derivation::decomposition(Derivation::hypothesis(f), set(&[2]));
        assert_eq!(d.statement, st(&[0], &[2]));
        assert!(d.verify(&[f]).is_ok());
    }

    #[test]
    fn augmentation_is_admissible() {
        let f = st(&[0], &[1]);
        let d = derive_augmentation(Derivation::hypothesis(f), set(&[2]));
        assert_eq!(d.statement, st(&[0, 2], &[1, 2]));
        assert!(d.verify(&[f]).is_ok());
    }

    #[test]
    fn closure_fixpoint() {
        let f = [st(&[0], &[1]), st(&[1], &[2]), st(&[3], &[4])];
        assert_eq!(closure(set(&[0]), &f), set(&[0, 1, 2]));
        assert_eq!(closure(set(&[3]), &f), set(&[3, 4]));
        assert_eq!(closure(set(&[2]), &f), set(&[2]));
    }

    #[test]
    fn prove_produces_verifiable_derivations() {
        let hyps = [st(&[0], &[1]), st(&[1], &[2]), st(&[2, 3], &[4])];
        let goal = st(&[0, 3], &[4]);
        let d = prove(&hyps, goal).expect("derivable");
        assert_eq!(d.statement, goal);
        assert!(d.verify(&hyps).is_ok());
    }

    #[test]
    fn prove_fails_on_non_inferences() {
        let hyps = [st(&[0], &[1])];
        assert!(prove(&hyps, st(&[1], &[0])).is_none());
        assert!(prove(&hyps, st(&[0], &[2])).is_none());
    }

    #[test]
    fn prove_handles_trivial_goals_without_hypotheses() {
        let d = prove(&[], st(&[0, 1], &[0])).expect("trivial");
        assert_eq!(d.rule, Rule::Reflexivity);
        assert!(d.verify(&[]).is_ok());
    }

    #[test]
    fn soundness_and_completeness_against_semantic_inference() {
        // Exhaustive check over a small universe: every statement over 3
        // variables with non-empty sides is derivable iff semantically
        // inferred (Lemma 2, empirically).
        let hyps = [st(&[0], &[1]), st(&[1, 2], &[0])];
        let all_sets: Vec<VarSet> = (1u64..8).map(VarSet).collect();
        for lhs in &all_sets {
            for rhs in &all_sets {
                let goal = Statement::new(*lhs, *rhs);
                let derivable = prove(&hyps, goal).is_some();
                let inferred = infers(&hyps, goal);
                assert_eq!(
                    derivable, inferred,
                    "mismatch for {goal}: derivable={derivable}, inferred={inferred}"
                );
                if let Some(d) = prove(&hyps, goal) {
                    assert!(d.verify(&hyps).is_ok());
                }
            }
        }
    }

    #[test]
    fn rendering_produces_one_line_per_step() {
        let hyps = [st(&[0], &[1]), st(&[1], &[2])];
        let d = prove(&hyps, st(&[0], &[2])).unwrap();
        let table = crate::var::VarTable::from_names(["A", "B", "C"]);
        let rendered = d.render(&table);
        assert_eq!(rendered.lines().count(), d.steps());
        assert!(rendered.contains("A => C"));
    }

    #[test]
    fn verify_catches_tampered_trees() {
        let f1 = st(&[0], &[1]);
        let mut d = Derivation::transitivity(
            Derivation::hypothesis(f1),
            Derivation::hypothesis(st(&[1], &[2])),
        );
        d.statement = st(&[0], &[1]); // corrupt the conclusion
        assert!(d.verify(&[f1, st(&[1], &[2])]).is_err());
    }
}
