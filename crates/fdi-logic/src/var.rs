//! Propositional variables, variable sets, and assignments.
//!
//! System-C formulas (§5 of the paper) range over propositional variables
//! `A, B, …` which, through the Lemma-3 correspondence, stand for
//! database attributes. Variable sets are the conjunctive terms
//! `X = A ∧ B` of implicational statements; we represent them as 64-bit
//! bitsets, which is ample for the paper's setting (relation schemes with
//! at most a few dozen attributes) and keeps set algebra branch-free.

use crate::truth::Truth;
use std::fmt;

/// Identifier of a propositional variable: an index into a [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Maximum number of distinct variables supported by [`VarSet`].
pub const VAR_LIMIT: usize = 64;

/// A set of propositional variables, represented as a 64-bit bitset.
///
/// Used both for the conjunctive sides of implicational statements and for
/// tracking which variables occur in a formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarSet(pub u64);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Creates a singleton set.
    #[inline]
    pub fn singleton(v: VarId) -> VarSet {
        debug_assert!(v.index() < VAR_LIMIT, "variable id out of range");
        VarSet(1u64 << v.0)
    }

    /// The set containing variables `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> VarSet {
        assert!(n <= VAR_LIMIT, "at most {VAR_LIMIT} variables supported");
        if n == VAR_LIMIT {
            VarSet(u64::MAX)
        } else {
            VarSet((1u64 << n) - 1)
        }
    }

    /// Returns `true` iff the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of variables in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, v: VarId) -> bool {
        debug_assert!(v.index() < VAR_LIMIT);
        self.0 & (1u64 << v.0) != 0
    }

    /// Inserts a variable, returning the enlarged set.
    #[inline]
    #[must_use]
    pub fn with(self, v: VarId) -> VarSet {
        debug_assert!(v.index() < VAR_LIMIT);
        VarSet(self.0 | (1u64 << v.0))
    }

    /// Removes a variable, returning the shrunken set.
    #[inline]
    #[must_use]
    pub fn without(self, v: VarId) -> VarSet {
        debug_assert!(v.index() < VAR_LIMIT);
        VarSet(self.0 & !(1u64 << v.0))
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    #[must_use]
    pub fn difference(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Subset test (`self ⊆ other`).
    #[inline]
    pub fn is_subset(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Disjointness test.
    #[inline]
    pub fn is_disjoint(self, other: VarSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = VarId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(VarId(i))
            }
        })
    }

    /// The smallest member, if any.
    #[inline]
    pub fn first(self) -> Option<VarId> {
        if self.0 == 0 {
            None
        } else {
            Some(VarId(self.0.trailing_zeros()))
        }
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut s = VarSet::EMPTY;
        for v in iter {
            s = s.with(v);
        }
        s
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// Bidirectional mapping between variable names and [`VarId`]s.
///
/// Shared by the formula parser and every display routine; formulas store
/// only `VarId`s so that set operations stay cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable { names: Vec::new() }
    }

    /// Creates a table with the given names, in order.
    pub fn from_names<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        let mut t = VarTable::new();
        for n in names {
            t.intern(&n.into());
        }
        t
    }

    /// Returns the id for `name`, creating it if necessary.
    ///
    /// # Panics
    /// Panics if more than [`VAR_LIMIT`] distinct names are interned.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        assert!(
            self.names.len() < VAR_LIMIT,
            "at most {VAR_LIMIT} propositional variables supported"
        );
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        id
    }

    /// Returns the id for `name` if it is already interned.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Returns the name of `id`, or a fallback rendering if unknown.
    pub fn name(&self, id: VarId) -> &str {
        self.names
            .get(id.index())
            .map(String::as_str)
            .unwrap_or("<?>")
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` iff no variable has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a variable set with names, e.g. `AB` or `A,B` when names are
    /// longer than one character.
    pub fn render_set(&self, set: VarSet) -> String {
        let names: Vec<&str> = set.iter().map(|v| self.name(v)).collect();
        if names.iter().all(|n| n.chars().count() == 1) {
            names.concat()
        } else {
            names.join(",")
        }
    }
}

/// A total assignment of truth values to the first `n` variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    values: Vec<Truth>,
}

impl Assignment {
    /// Creates an assignment from explicit values (index = variable id).
    pub fn new(values: Vec<Truth>) -> Self {
        Assignment { values }
    }

    /// An all-`unknown` assignment over `n` variables.
    pub fn unknown(n: usize) -> Self {
        Assignment {
            values: vec![Truth::Unknown; n],
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` iff the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of variable `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: VarId) -> Truth {
        self.values[v.index()]
    }

    /// Sets the value of variable `v`.
    pub fn set(&mut self, v: VarId, t: Truth) {
        self.values[v.index()] = t;
    }

    /// Raw values, index = variable id.
    pub fn values(&self) -> &[Truth] {
        &self.values
    }

    /// Enumerates all `3^n` assignments over `n` variables.
    ///
    /// # Panics
    /// Panics if `n > 20` (3^20 ≈ 3.5·10⁹ would never terminate usefully).
    pub fn enumerate_all(n: usize) -> impl Iterator<Item = Assignment> {
        assert!(n <= 20, "exhaustive 3^n enumeration capped at n = 20");
        let total = 3u64.pow(n as u32);
        (0..total).map(move |mut code| {
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(Truth::ALL[(code % 3) as usize]);
                code /= 3;
            }
            Assignment { values }
        })
    }

    /// Enumerates all `2^n` *two-valued* assignments over `n` variables.
    ///
    /// # Panics
    /// Panics if `n > 30`.
    pub fn enumerate_boolean(n: usize) -> impl Iterator<Item = Assignment> {
        assert!(n <= 30, "exhaustive 2^n enumeration capped at n = 30");
        (0..(1u64 << n)).map(move |code| {
            let values = (0..n).map(|i| Truth::from(code & (1 << i) != 0)).collect();
            Assignment { values }
        })
    }

    /// Renders the assignment compactly, e.g. `T F U`.
    pub fn render(&self, table: &VarTable) -> String {
        self.values
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{}={}", table.name(VarId(i as u32)), t.letter()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varset_basic_algebra() {
        let a = VarId(0);
        let b = VarId(1);
        let c = VarId(5);
        let s = VarSet::EMPTY.with(a).with(c);
        assert!(s.contains(a));
        assert!(!s.contains(b));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(a), VarSet::singleton(c));
        assert!(VarSet::singleton(a).is_subset(s));
        assert!(!s.is_subset(VarSet::singleton(a)));
        assert!(s.is_disjoint(VarSet::singleton(b)));
        assert_eq!(s.union(VarSet::singleton(b)).len(), 3);
        assert_eq!(s.intersect(VarSet::singleton(c)), VarSet::singleton(c));
        assert_eq!(s.difference(VarSet::singleton(c)), VarSet::singleton(a));
    }

    #[test]
    fn varset_iteration_is_ordered() {
        let s: VarSet = [VarId(7), VarId(2), VarId(40)].into_iter().collect();
        let ids: Vec<u32> = s.iter().map(|v| v.0).collect();
        assert_eq!(ids, vec![2, 7, 40]);
        assert_eq!(s.first(), Some(VarId(2)));
        assert_eq!(VarSet::EMPTY.first(), None);
    }

    #[test]
    fn first_n_builds_prefix_sets() {
        assert_eq!(VarSet::first_n(0), VarSet::EMPTY);
        assert_eq!(VarSet::first_n(3).len(), 3);
        assert!(VarSet::first_n(3).contains(VarId(2)));
        assert!(!VarSet::first_n(3).contains(VarId(3)));
        assert_eq!(VarSet::first_n(64).len(), 64);
    }

    #[test]
    fn var_table_interns_and_looks_up() {
        let mut t = VarTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        assert_eq!(t.intern("A"), a);
        assert_ne!(a, b);
        assert_eq!(t.lookup("B"), Some(b));
        assert_eq!(t.lookup("Z"), None);
        assert_eq!(t.name(a), "A");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn render_set_concatenates_single_char_names() {
        let t = VarTable::from_names(["A", "B", "C"]);
        let s: VarSet = [VarId(0), VarId(2)].into_iter().collect();
        assert_eq!(t.render_set(s), "AC");
        let t2 = VarTable::from_names(["Emp", "Sal"]);
        let s2: VarSet = [VarId(0), VarId(1)].into_iter().collect();
        assert_eq!(t2.render_set(s2), "Emp,Sal");
    }

    #[test]
    fn assignment_enumeration_counts() {
        assert_eq!(Assignment::enumerate_all(3).count(), 27);
        assert_eq!(Assignment::enumerate_boolean(4).count(), 16);
        // all enumerated assignments are distinct
        let all: std::collections::HashSet<_> = Assignment::enumerate_all(3).collect();
        assert_eq!(all.len(), 27);
    }

    #[test]
    fn assignment_get_set() {
        let mut a = Assignment::unknown(3);
        assert_eq!(a.get(VarId(1)), Truth::Unknown);
        a.set(VarId(1), Truth::True);
        assert_eq!(a.get(VarId(1)), Truth::True);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn boolean_enumeration_is_two_valued() {
        for a in Assignment::enumerate_boolean(3) {
            assert!(a.values().iter().all(|t| !t.is_unknown()));
        }
    }
}
