//! # fdi-logic — three-valued logic and System-C for unknown outcomes
//!
//! Logical substrate for the reproduction of *Vassiliou, "Functional
//! Dependencies and Incomplete Information", VLDB 1980*. Section 5 of the
//! paper reduces reasoning about functional dependencies over null values
//! to reasoning about **implicational statements** in *System-C*, Bertram's
//! modal propositional logic for unknown outcomes. This crate implements
//! that logic from scratch:
//!
//! * [`truth`] — the three-valued truth lattice (`true` / `false` /
//!   `unknown`) with the paper's least-upper-bound combiner and the Kleene
//!   connectives;
//! * [`var`] — propositional variables, 64-bit variable sets, and
//!   three-valued assignments (with exhaustive enumeration);
//! * [`formula`] — System-C well-formed formulas, including the modal
//!   necessity operator `∇`;
//! * [`parser`] — a text syntax for formulas;
//! * [`eval`] — the non-truth-functional evaluation scheme `V`
//!   (tautology-first rule 1), C-tautology checking, and a compiled
//!   evaluator for repeated evaluation;
//! * [`implication`] — implicational statements `X ⇒ Y`, closed-form
//!   evaluation, and strong/weak logical inference;
//! * [`mod@derive`] — the I1–I4 derivation system with explicit, verifiable
//!   proof trees (Lemma 2), including the admissibility of Armstrong's
//!   augmentation rule;
//! * [`axioms`] — a Hilbert-style axiomatization of C (classical core +
//!   modal K/T/4/5 and necessitation, per the paper's description of
//!   [Bertram 73]) with machine-checked proof objects, sound for
//!   C-validity;
//! * [`closure`] — the planning-speed twin of [`implication`]: u64
//!   bitset [`closure::ColumnSet`]s and a precomputed per-FD-set
//!   [`closure::ClosureEngine`] answering `expand`/`reduce`/superkey
//!   queries at millions of calls per second, for query planners and
//!   lattice searches that cannot afford proof search in inner loops.
//!
//! The crate is dependency-free and usable on its own; `fdi-core` builds
//! the FD ↔ System-C bridge (Lemmas 3 and 4, Theorem 1) on top of it.
//!
//! ## Example
//!
//! ```
//! use fdi_logic::parser::parse_standalone;
//! use fdi_logic::eval::{eval_c, is_c_tautology};
//! use fdi_logic::truth::Truth;
//! use fdi_logic::var::Assignment;
//!
//! // Rule 1 of the evaluation scheme: a classical tautology is true in
//! // System-C even when its variables are unknown.
//! let (formula, table) = parse_standalone("married | !married").unwrap();
//! let nothing_known = Assignment::unknown(table.len());
//! assert_eq!(eval_c(&formula, &nothing_known), Truth::True);
//! assert!(is_c_tautology(&formula));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod closure;
pub mod derive;
pub mod eval;
pub mod formula;
pub mod implication;
pub mod parser;
pub mod truth;
pub mod var;

pub use closure::{ClosureEngine, ColumnSet};
pub use eval::{eval_c, is_c_tautology, is_tautology_2v, Compiled};
pub use formula::Formula;
pub use implication::{infers, weakly_infers, InferenceMode, Statement};
pub use truth::Truth;
pub use var::{Assignment, VarId, VarSet, VarTable};
