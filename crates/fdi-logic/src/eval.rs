//! The System-C evaluation scheme `V` and tautology checking.
//!
//! System-C (§5, [Bertram 73]) is *not* truth-functional: its evaluation
//! scheme applies **rule 1** — "if `P` is a tautology of classical
//! two-valued logic then `V(P) = true`" — *before* the structural rules,
//! at every recursive step. The paper's example: `p ∨ ¬p` evaluates to
//! `true` even when `a(p) = unknown`, although pure Kleene evaluation
//! would give `unknown`.
//!
//! The remaining rules are structural:
//!
//! * rule 2: `V(p_i) = a_i`;
//! * rule 3: Kleene negation;
//! * rule 4: Kleene conjunction (and its disjunction dual);
//! * rule 5: `V(∇Q) = true` iff `V(Q) = true`, else `false`.
//!
//! **Modal formulas and rule 1.** For formulas containing `∇` the phrase
//! "tautology in the classical two-valued logic" is read in the standard
//! modal-logic sense: `P` must be a *substitution instance of a classical
//! tautology with maximal `∇`-subformulas treated as opaque atoms*
//! (a "tautological consequence"). Reading `∇Q` as `Q` instead would make
//! `p ⇒ ∇p` a rule-1 tautology and collapse the modal distinction that
//! rule 5 exists to draw ([Bertram 73]'s last axiom restricts C to a
//! logic of *logical necessity*, which requires `p ⇒ ∇p` to fail).
//! Structurally identical `∇`-subformulas are identified (hash-consed)
//! before the check, so `∇p ∨ ¬∇p` *is* a rule-1 tautology.
//!
//! [`Compiled`] flattens a formula into an arena and *precomputes* the
//! rule-1 flag of every subformula, so that repeated evaluation (as done
//! by [`is_c_tautology`] over `3^n` assignments) costs one pass over the
//! arena per assignment.

use crate::formula::Formula;
use crate::truth::Truth;
use crate::var::{Assignment, VarId, VarSet, VarTable};
use std::collections::HashMap;

/// Maximum number of distinct atoms in any subformula for which the
/// rule-1 tautology flag is computed by exhaustive two-valued enumeration.
///
/// `2^22` evaluations of a small arena is well under a second; formulas
/// beyond this size should use the closed-form implicational fast path
/// (see [`crate::implication`]) instead of the generic evaluator.
pub const TAUTOLOGY_ENUM_LIMIT: usize = 22;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Var(VarId),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Nec(u32),
}

/// A formula compiled for repeated evaluation: an arena in bottom-up
/// order, the rule-1 atoms of every node, and the precomputed rule-1
/// (two-valued tautology) flag of every node.
#[derive(Debug, Clone)]
pub struct Compiled {
    nodes: Vec<Node>,
    /// Rule-1 atoms of each node: variables plus maximal ∇-subformulas
    /// (as hash-consed atom ids ≥ the variable ids).
    atoms: Vec<Vec<u32>>,
    /// Atom id of each node when the node itself is a rule-1 atom
    /// (variables and ∇-nodes).
    own_atom: Vec<Option<u32>>,
    taut2: Vec<bool>,
    root: u32,
    all_vars: VarSet,
    /// Canonical structural keys, used to hash-cons ∇-atoms.
    canon: Vec<String>,
}

impl Compiled {
    /// Compiles `formula`, desugaring `⇒` into `¬∨` and computing the
    /// rule-1 flag of every subformula.
    ///
    /// # Panics
    /// Panics if some subformula has more than [`TAUTOLOGY_ENUM_LIMIT`]
    /// distinct rule-1 atoms.
    pub fn new(formula: &Formula) -> Compiled {
        let mut c = Compiled {
            nodes: Vec::with_capacity(formula.size()),
            atoms: Vec::new(),
            own_atom: Vec::new(),
            taut2: Vec::new(),
            root: 0,
            all_vars: VarSet::EMPTY,
            canon: Vec::new(),
        };
        let mut nec_atoms: HashMap<String, u32> = HashMap::new();
        // Atom ids 0..64 are reserved for variables; ∇-atoms follow.
        let mut next_atom = crate::var::VAR_LIMIT as u32;
        c.root = c.push(formula, &mut nec_atoms, &mut next_atom);
        c.all_vars = c.var_set(c.root);
        c
    }

    fn push(
        &mut self,
        f: &Formula,
        nec_atoms: &mut HashMap<String, u32>,
        next_atom: &mut u32,
    ) -> u32 {
        let node = match f {
            Formula::Var(v) => Node::Var(*v),
            Formula::Not(p) => Node::Not(self.push(p, nec_atoms, next_atom)),
            Formula::Nec(p) => Node::Nec(self.push(p, nec_atoms, next_atom)),
            Formula::And(p, q) => {
                let (a, b) = (
                    self.push(p, nec_atoms, next_atom),
                    self.push(q, nec_atoms, next_atom),
                );
                Node::And(a, b)
            }
            Formula::Or(p, q) => {
                let (a, b) = (
                    self.push(p, nec_atoms, next_atom),
                    self.push(q, nec_atoms, next_atom),
                );
                Node::Or(a, b)
            }
            Formula::Implies(p, q) => {
                let a = self.push(p, nec_atoms, next_atom);
                let not_a = self.add_node(Node::Not(a), nec_atoms, next_atom);
                let b = self.push(q, nec_atoms, next_atom);
                Node::Or(not_a, b)
            }
        };
        self.add_node(node, nec_atoms, next_atom)
    }

    fn add_node(
        &mut self,
        node: Node,
        nec_atoms: &mut HashMap<String, u32>,
        next_atom: &mut u32,
    ) -> u32 {
        let canon = match node {
            Node::Var(v) => format!("v{}", v.0),
            Node::Not(p) => format!("!({})", self.canon[p as usize]),
            Node::Nec(p) => format!("N({})", self.canon[p as usize]),
            Node::And(p, q) => format!("({})&({})", self.canon[p as usize], self.canon[q as usize]),
            Node::Or(p, q) => format!("({})|({})", self.canon[p as usize], self.canon[q as usize]),
        };
        let own_atom = match node {
            Node::Var(v) => Some(v.0),
            Node::Nec(_) => Some(*nec_atoms.entry(canon.clone()).or_insert_with(|| {
                let id = *next_atom;
                *next_atom += 1;
                id
            })),
            _ => None,
        };
        // Rule-1 atoms: the node's own atom if it is one, otherwise the
        // union of the children's atoms (maximal ∇-subformulas stop the
        // descent).
        let atoms: Vec<u32> = if let Some(a) = own_atom {
            vec![a]
        } else {
            let merge = |xs: &[u32], ys: &[u32]| -> Vec<u32> {
                let mut out = xs.to_vec();
                for y in ys {
                    if !out.contains(y) {
                        out.push(*y);
                    }
                }
                out
            };
            match node {
                Node::Not(p) => self.atoms[p as usize].clone(),
                Node::And(p, q) | Node::Or(p, q) => {
                    merge(&self.atoms[p as usize], &self.atoms[q as usize])
                }
                Node::Var(_) | Node::Nec(_) => unreachable!("handled via own_atom"),
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.canon.push(canon);
        self.own_atom.push(own_atom);
        self.atoms.push(atoms);
        let taut = self.compute_taut2(id);
        self.taut2.push(taut);
        id
    }

    /// Variables (not ∇-atoms) occurring below node `id`.
    fn var_set(&self, id: u32) -> VarSet {
        match self.nodes[id as usize] {
            Node::Var(v) => VarSet::singleton(v),
            Node::Not(p) | Node::Nec(p) => self.var_set(p),
            Node::And(p, q) | Node::Or(p, q) => self.var_set(p).union(self.var_set(q)),
        }
    }

    /// Exhaustively checks whether node `id` is a substitution instance
    /// of a two-valued tautology over its rule-1 atoms (rule 1 of the
    /// evaluation scheme).
    fn compute_taut2(&self, id: u32) -> bool {
        let atom_list = &self.atoms[id as usize];
        let k = atom_list.len();
        assert!(
            k <= TAUTOLOGY_ENUM_LIMIT,
            "rule-1 tautology check over {k} atoms exceeds the {TAUTOLOGY_ENUM_LIMIT}-atom \
             enumeration limit; use the implicational fast path for large formulas"
        );
        for code in 0u64..(1u64 << k) {
            let lookup = |atom: u32| -> bool {
                let pos = atom_list
                    .iter()
                    .position(|a| *a == atom)
                    .expect("atom in list");
                code & (1 << pos) != 0
            };
            if !self.eval_bool_node(id, &lookup) {
                return false;
            }
        }
        true
    }

    /// Classical two-valued evaluation of node `id`, with variables and
    /// maximal ∇-subformulas both read off the atom lookup.
    fn eval_bool_node(&self, id: u32, lookup: &dyn Fn(u32) -> bool) -> bool {
        if let Some(atom) = self.own_atom[id as usize] {
            return lookup(atom);
        }
        match self.nodes[id as usize] {
            Node::Not(p) => !self.eval_bool_node(p, lookup),
            Node::And(p, q) => self.eval_bool_node(p, lookup) && self.eval_bool_node(q, lookup),
            Node::Or(p, q) => self.eval_bool_node(p, lookup) || self.eval_bool_node(q, lookup),
            Node::Var(_) | Node::Nec(_) => unreachable!("atoms handled above"),
        }
    }

    /// The variables of the whole formula.
    pub fn vars(&self) -> VarSet {
        self.all_vars
    }

    /// Whether the whole formula is a rule-1 tautology (atoms =
    /// variables and maximal ∇-subformulas).
    pub fn is_two_valued_tautology(&self) -> bool {
        self.taut2[self.root as usize]
    }

    /// Evaluates the formula under `assignment` with the System-C scheme
    /// `V`: the rule-1 flag short-circuits every subformula to `true`
    /// before the structural rules apply.
    pub fn eval(&self, assignment: &Assignment) -> Truth {
        let mut values = vec![Truth::Unknown; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = if self.taut2[i] {
                Truth::True
            } else {
                match *node {
                    Node::Var(v) => assignment.get(v),
                    Node::Not(p) => values[p as usize].not(),
                    Node::Nec(p) => values[p as usize].necessarily(),
                    Node::And(p, q) => values[p as usize].and(values[q as usize]),
                    Node::Or(p, q) => values[p as usize].or(values[q as usize]),
                }
            };
        }
        values[self.root as usize]
    }

    /// Pure Kleene evaluation (rule 1 disabled): what a truth-functional
    /// three-valued logic would compute. Exposed to demonstrate where
    /// System-C differs (e.g. `p ∨ ¬p`).
    pub fn eval_kleene(&self, assignment: &Assignment) -> Truth {
        let mut values = vec![Truth::Unknown; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::Var(v) => assignment.get(v),
                Node::Not(p) => values[p as usize].not(),
                Node::Nec(p) => values[p as usize].necessarily(),
                Node::And(p, q) => values[p as usize].and(values[q as usize]),
                Node::Or(p, q) => values[p as usize].or(values[q as usize]),
            };
        }
        values[self.root as usize]
    }
}

/// Evaluates `formula` under `assignment` using the System-C scheme `V`.
///
/// Convenience wrapper; compile once with [`Compiled::new`] when
/// evaluating the same formula under many assignments.
pub fn eval_c(formula: &Formula, assignment: &Assignment) -> Truth {
    Compiled::new(formula).eval(assignment)
}

/// Checks whether `formula` is a rule-1 **two-valued** tautology
/// (maximal `∇`-subformulas treated as opaque atoms).
pub fn is_tautology_2v(formula: &Formula) -> bool {
    Compiled::new(formula).is_two_valued_tautology()
}

/// Checks whether `formula` is a **C-tautology**: `V(formula, a) = true`
/// for *every* three-valued assignment `a` of its variables.
///
/// By [Bertram 73] the C-tautologies coincide with the C-theorems
/// (soundness and completeness), so this is also a theoremhood test.
pub fn is_c_tautology(formula: &Formula) -> bool {
    let compiled = Compiled::new(formula);
    let vars: Vec<VarId> = compiled.vars().iter().collect();
    let n = vars.len();
    assert!(n <= 16, "C-tautology enumeration capped at 16 variables");
    // Enumerate assignments over the occurring variables only; variables
    // not occurring are irrelevant to V.
    let width = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let total = 3u64.pow(n as u32);
    let mut assignment = Assignment::unknown(width);
    for mut code in 0..total {
        for v in &vars {
            assignment.set(*v, Truth::ALL[(code % 3) as usize]);
            code /= 3;
        }
        if compiled.eval(&assignment) != Truth::True {
            return false;
        }
    }
    true
}

/// The result of probing a formula under every assignment: how many
/// assignments give each truth value. Used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValuationProfile {
    /// Number of assignments with `V = true`.
    pub true_count: u64,
    /// Number of assignments with `V = false`.
    pub false_count: u64,
    /// Number of assignments with `V = unknown`.
    pub unknown_count: u64,
}

/// Counts `V(formula, a)` over all `3^n` assignments of the occurring
/// variables.
pub fn valuation_profile(formula: &Formula) -> ValuationProfile {
    let compiled = Compiled::new(formula);
    let vars: Vec<VarId> = compiled.vars().iter().collect();
    let n = vars.len();
    assert!(
        n <= 16,
        "valuation profile enumeration capped at 16 variables"
    );
    let width = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut profile = ValuationProfile::default();
    let mut assignment = Assignment::unknown(width);
    for mut code in 0..3u64.pow(n as u32) {
        for v in &vars {
            assignment.set(*v, Truth::ALL[(code % 3) as usize]);
            code /= 3;
        }
        match compiled.eval(&assignment) {
            Truth::True => profile.true_count += 1,
            Truth::False => profile.false_count += 1,
            Truth::Unknown => profile.unknown_count += 1,
        }
    }
    profile
}

/// Renders a full `V` truth table of `formula` (one line per assignment);
/// intended for small formulas in examples and the harness.
pub fn truth_table(formula: &Formula, table: &VarTable) -> String {
    let compiled = Compiled::new(formula);
    let vars: Vec<VarId> = compiled.vars().iter().collect();
    let n = vars.len();
    assert!(n <= 6, "truth tables rendered for at most 6 variables");
    let width = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut out = String::new();
    for v in &vars {
        out.push_str(table.name(*v));
        out.push(' ');
    }
    out.push_str("| V\n");
    let mut assignment = Assignment::unknown(width);
    for mut code in 0..3u64.pow(n as u32) {
        for v in &vars {
            assignment.set(*v, Truth::ALL[(code % 3) as usize]);
            code /= 3;
        }
        for v in &vars {
            let pad = table.name(*v).len();
            out.push(assignment.get(*v).letter());
            for _ in 1..pad {
                out.push(' ');
            }
            out.push(' ');
        }
        out.push_str("| ");
        out.push(compiled.eval(&assignment).letter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_standalone;

    fn eval_str(formula: &str, values: &[(&str, Truth)]) -> Truth {
        let (f, table) = parse_standalone(formula).unwrap();
        let mut a = Assignment::unknown(table.len());
        for (name, t) in values {
            a.set(table.lookup(name).expect("var"), *t);
        }
        eval_c(&f, &a)
    }

    #[test]
    fn rule_one_promotes_excluded_middle() {
        // The paper's own example: p ∨ ¬p is true in C even under unknown,
        // though pure Kleene evaluation yields unknown.
        assert_eq!(eval_str("p | !p", &[("p", Truth::Unknown)]), Truth::True);
        let (f, _) = parse_standalone("p | !p").unwrap();
        let c = Compiled::new(&f);
        assert_eq!(
            c.eval_kleene(&Assignment::unknown(1)),
            Truth::Unknown,
            "Kleene must NOT promote the tautology — that is the point of rule 1"
        );
    }

    #[test]
    fn structural_rules_match_kleene_on_non_tautologies() {
        use Truth::*;
        assert_eq!(eval_str("p & q", &[("p", True), ("q", Unknown)]), Unknown);
        assert_eq!(eval_str("p & q", &[("p", False), ("q", Unknown)]), False);
        assert_eq!(
            eval_str("p | q", &[("p", Unknown), ("q", Unknown)]),
            Unknown
        );
        assert_eq!(eval_str("!p", &[("p", Unknown)]), Unknown);
    }

    #[test]
    fn necessity_rule_five() {
        use Truth::*;
        assert_eq!(eval_str("nec p", &[("p", True)]), True);
        assert_eq!(eval_str("nec p", &[("p", Unknown)]), False);
        assert_eq!(eval_str("nec p", &[("p", False)]), False);
    }

    #[test]
    fn nec_subformulas_are_rule_one_atoms() {
        // ∇p ∨ ¬∇p: a tautological instance with atom q = ∇p → rule 1.
        let (f, _) = parse_standalone("nec p | !nec p").unwrap();
        assert!(is_tautology_2v(&f));
        // p ⇒ ∇p is NOT a tautological instance: atoms p and ∇p are
        // independent. Reading ∇ as identity would wrongly promote it.
        let (g, _) = parse_standalone("p => nec p").unwrap();
        assert!(!is_tautology_2v(&g));
        assert_eq!(
            eval_str("p => nec p", &[("p", Truth::Unknown)]),
            Truth::Unknown
        );
    }

    #[test]
    fn contradictions_are_not_demoted() {
        // Rule 1 promotes tautologies only; p ∧ ¬p under unknown stays
        // unknown (System-C is asymmetric here — documented behaviour).
        assert_eq!(eval_str("p & !p", &[("p", Truth::Unknown)]), Truth::Unknown);
        // ... but its negation is a tautology and therefore true.
        assert_eq!(eval_str("!(p & !p)", &[("p", Truth::Unknown)]), Truth::True);
    }

    #[test]
    fn implication_desugars_and_reflexive_implication_is_true() {
        // X ⇒ Y with Y ⊆ X is a two-valued tautology: rule 1 applies.
        assert_eq!(
            eval_str(
                "p & q => p",
                &[("p", Truth::Unknown), ("q", Truth::Unknown)]
            ),
            Truth::True
        );
        // A genuine implication behaves Kleene-wise.
        assert_eq!(
            eval_str("p => q", &[("p", Truth::True), ("q", Truth::Unknown)]),
            Truth::Unknown
        );
        assert_eq!(
            eval_str("p => q", &[("p", Truth::False), ("q", Truth::Unknown)]),
            Truth::True
        );
    }

    #[test]
    fn c_tautologies() {
        let cases_true = ["p | !p", "p => p", "p & q => p", "p => p | q", "nec p => p"];
        for s in cases_true {
            let (f, _) = parse_standalone(s).unwrap();
            assert!(is_c_tautology(&f), "{s} should be a C-tautology");
        }
        let cases_false = ["p", "p => q", "p | q", "p => nec p", "nec (p | q) => nec p"];
        for s in cases_false {
            let (f, _) = parse_standalone(s).unwrap();
            assert!(!is_c_tautology(&f), "{s} should not be a C-tautology");
        }
    }

    #[test]
    fn modal_necessitation_distinction() {
        // p ⇒ p is a C-tautology but p ⇒ ∇p is not: when a(p) = unknown,
        // V(∇p) = false so the implication is unknown ∨ false = unknown.
        let (f, table) = parse_standalone("p => nec p").unwrap();
        let mut a = Assignment::unknown(table.len());
        a.set(table.lookup("p").unwrap(), Truth::Unknown);
        assert_eq!(eval_c(&f, &a), Truth::Unknown);
    }

    #[test]
    fn two_valued_tautology_flag() {
        let (f, _) = parse_standalone("p | !p").unwrap();
        assert!(is_tautology_2v(&f));
        let (g, _) = parse_standalone("p | !q").unwrap();
        assert!(!is_tautology_2v(&g));
        // De Morgan as a biconditional, spelled with two implications.
        let (h, _) = parse_standalone("(!(p & q) => (!p | !q)) & ((!p | !q) => !(p & q))").unwrap();
        assert!(is_tautology_2v(&h));
    }

    #[test]
    fn valuation_profile_counts_all_assignments() {
        let (f, _) = parse_standalone("p => q").unwrap();
        let profile = valuation_profile(&f);
        assert_eq!(
            profile.true_count + profile.false_count + profile.unknown_count,
            9
        );
        // V(p⇒q): false only at p=T,q=F.
        assert_eq!(profile.false_count, 1);
        // true at p=F (3 cases) and q=T (3 cases), overlapping at (F,T): 5.
        assert_eq!(profile.true_count, 5);
        assert_eq!(profile.unknown_count, 3);
    }

    #[test]
    fn truth_table_renders() {
        let (f, t) = parse_standalone("p => q").unwrap();
        let rendered = truth_table(&f, &t);
        assert_eq!(rendered.lines().count(), 10); // header + 9 assignments
        assert!(rendered.starts_with("p q | V"));
    }

    #[test]
    fn compiled_eval_agrees_with_uncompiled_on_nested_shapes() {
        let shapes = [
            "((p => q) & (q => r)) => (p => r)",
            "nec (p & q) => nec p & nec q",
            "!(p | q) => !p & !q",
            "(p & !p) | (q | !q)",
            "nec (p | !p)",
        ];
        for s in shapes {
            let (f, table) = parse_standalone(s).unwrap();
            let compiled = Compiled::new(&f);
            for a in Assignment::enumerate_all(table.len()) {
                assert_eq!(compiled.eval(&a), eval_c(&f, &a), "formula {s}");
            }
        }
    }

    #[test]
    fn necessitation_of_a_tautology_is_a_c_tautology() {
        // ∇(p ∨ ¬p): the operand is a rule-1 tautology, so V(operand) =
        // true and rule 5 gives true everywhere.
        let (f, _) = parse_standalone("nec (p | !p)").unwrap();
        assert!(is_c_tautology(&f));
    }

    #[test]
    fn everything_provable_in_two_valued_logic_is_true_in_c() {
        // The paper: "some of the axioms comprise a set of axioms for
        // classical two-valued logic, thus ensuring that everything
        // provable in two-valued logic is also provable in C".
        // Semantically: every 2v tautology is a C-tautology.
        let two_valued_tautologies = [
            "p | !p",
            "((p => q) & (q => r)) => (p => r)",
            "p => (q => p)",
            "(p => (q => r)) => ((p => q) => (p => r))",
            "(!q => !p) => (p => q)",
        ];
        for s in two_valued_tautologies {
            let (f, _) = parse_standalone(s).unwrap();
            assert!(is_tautology_2v(&f), "{s}");
            assert!(is_c_tautology(&f), "{s}");
        }
    }
}
