//! The three-valued truth lattice used throughout the paper.
//!
//! Vassiliou's least-extension rule evaluates a predicate under every
//! completion of the nulls it touches and returns the *least upper bound*
//! of the outcomes: if all completions agree the common value is returned,
//! otherwise the evaluation is [`Truth::Unknown`] (§2 of the paper:
//! `lub{yes, no} = unknown`).
//!
//! Two orderings coexist on `{true, false, unknown}`:
//!
//! * the **information (approximation) ordering** `unknown ⊑ true`,
//!   `unknown ⊑ false` — `unknown` carries the least information;
//! * the **truth ordering** `false ≤ unknown ≤ true` used by the Kleene
//!   connectives (rules 3–4 of System-C's evaluation scheme, §5).
//!
//! [`Truth::lub`] and [`Truth::combine`] implement the paper's lub, which
//! collapses disagreeing outcomes to `unknown`.

use std::fmt;
use std::str::FromStr;

/// A three-valued truth value: `true`, `false`, or `unknown`.
///
/// `Unknown` is the value the least-extension rule assigns to a predicate
/// whose outcome depends on what a null actually stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// The predicate holds under every completion.
    True,
    /// The predicate fails under every completion.
    False,
    /// Completions disagree: the incomplete knowledge is essential.
    Unknown,
}

impl Truth {
    /// All three truth values, in a fixed order (useful for exhaustive
    /// assignment enumeration).
    pub const ALL: [Truth; 3] = [Truth::True, Truth::False, Truth::Unknown];

    /// Returns `true` iff this value is [`Truth::True`].
    #[inline]
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// Returns `true` iff this value is [`Truth::False`].
    #[inline]
    pub fn is_false(self) -> bool {
        self == Truth::False
    }

    /// Returns `true` iff this value is [`Truth::Unknown`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Truth::Unknown
    }

    /// The *weak acceptance* predicate of §4: a dependency weakly holds when
    /// its value is **not** `false` (true or unknown are both acceptable).
    #[inline]
    pub fn is_not_false(self) -> bool {
        self != Truth::False
    }

    /// The paper's least upper bound of two evaluation outcomes: equal
    /// values are preserved, disagreeing values collapse to `unknown`.
    ///
    /// This is the binary form of the least-extension combiner; it is
    /// associative, commutative, and idempotent, with no identity element
    /// (the lub of an empty set is undefined — see [`Truth::lub`]).
    #[inline]
    pub fn combine(self, other: Truth) -> Truth {
        if self == other {
            self
        } else {
            Truth::Unknown
        }
    }

    /// Least upper bound of a non-empty collection of outcomes; `None` when
    /// the iterator is empty.
    ///
    /// Short-circuits: once two distinct values have been seen the result
    /// is `unknown` regardless of the rest.
    pub fn lub<I: IntoIterator<Item = Truth>>(outcomes: I) -> Option<Truth> {
        let mut iter = outcomes.into_iter();
        let first = iter.next()?;
        let mut acc = first;
        for t in iter {
            acc = acc.combine(t);
            if acc == Truth::Unknown {
                return Some(Truth::Unknown);
            }
        }
        Some(acc)
    }

    /// Kleene negation (rule 3 of the System-C evaluation scheme).
    ///
    /// Named `not` to match the logical reading; `std::ops::Not` is also
    /// implemented and delegates here.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Kleene conjunction (rule 4 of the System-C evaluation scheme):
    /// `true` if both are `true`, `false` if either is `false`,
    /// `unknown` otherwise.
    #[inline]
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction (dual of rule 4): `true` if either is `true`,
    /// `false` if both are `false`, `unknown` otherwise.
    #[inline]
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene (material) implication: `¬self ∨ other`.
    #[inline]
    pub fn implies(self, other: Truth) -> Truth {
        self.not().or(other)
    }

    /// The modal *necessity* operator `∇` (rule 5 of the System-C
    /// evaluation scheme): `true` iff the operand is `true`, `false`
    /// otherwise. `∇` reads "necessarily true".
    #[inline]
    pub fn necessarily(self) -> Truth {
        if self == Truth::True {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Information (approximation) ordering: `self ⊑ other` iff `self`
    /// carries no more information than `other`. `unknown` approximates
    /// everything; `true` and `false` are incomparable.
    #[inline]
    pub fn approximates(self, other: Truth) -> bool {
        self == Truth::Unknown || self == other
    }

    /// Conjunction over an iterator (`true` for the empty conjunction).
    pub fn all<I: IntoIterator<Item = Truth>>(outcomes: I) -> Truth {
        let mut acc = Truth::True;
        for t in outcomes {
            acc = acc.and(t);
            if acc == Truth::False {
                return Truth::False;
            }
        }
        acc
    }

    /// Disjunction over an iterator (`false` for the empty disjunction).
    pub fn any<I: IntoIterator<Item = Truth>>(outcomes: I) -> Truth {
        let mut acc = Truth::False;
        for t in outcomes {
            acc = acc.or(t);
            if acc == Truth::True {
                return Truth::True;
            }
        }
        acc
    }

    /// A compact single-character rendering (`T`, `F`, `U`).
    pub fn letter(self) -> char {
        match self {
            Truth::True => 'T',
            Truth::False => 'F',
            Truth::Unknown => 'U',
        }
    }

    /// Index in `0..3` matching [`Truth::ALL`]; handy for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Truth::True => 0,
            Truth::False => 1,
            Truth::Unknown => 2,
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl std::ops::Not for Truth {
    type Output = Truth;

    fn not(self) -> Truth {
        Truth::not(self)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Truth`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTruthError(pub String);

impl fmt::Display for ParseTruthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid truth value: {:?}", self.0)
    }
}

impl std::error::Error for ParseTruthError {}

impl FromStr for Truth {
    type Err = ParseTruthError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "yes" | "1" => Ok(Truth::True),
            "false" | "f" | "no" | "0" => Ok(Truth::False),
            "unknown" | "u" | "?" | "null" => Ok(Truth::Unknown),
            other => Err(ParseTruthError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Truth::*;

    #[test]
    fn lub_of_agreeing_outcomes_is_the_common_value() {
        assert_eq!(Truth::lub([True, True, True]), Some(True));
        assert_eq!(Truth::lub([False, False]), Some(False));
        assert_eq!(Truth::lub([Unknown, Unknown]), Some(Unknown));
    }

    #[test]
    fn lub_of_disagreeing_outcomes_is_unknown() {
        // The paper's marital-status example: lub{yes, no} = unknown.
        assert_eq!(Truth::lub([True, False]), Some(Unknown));
        assert_eq!(Truth::lub([False, True, True]), Some(Unknown));
        assert_eq!(Truth::lub([True, Unknown]), Some(Unknown));
    }

    #[test]
    fn lub_of_empty_set_is_undefined() {
        assert_eq!(Truth::lub(std::iter::empty()), None);
    }

    #[test]
    fn combine_is_associative_and_commutative() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a.combine(b), b.combine(a));
                for c in Truth::ALL {
                    assert_eq!(a.combine(b).combine(c), a.combine(b.combine(c)));
                }
            }
        }
    }

    #[test]
    fn kleene_negation_is_involutive_on_definite_values() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
        for t in Truth::ALL {
            assert_eq!(t.not().not(), t);
        }
    }

    #[test]
    fn kleene_conjunction_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn kleene_disjunction_truth_table() {
        assert_eq!(True.or(False), True);
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn de_morgan_laws_hold() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn necessity_maps_unknown_to_false() {
        assert_eq!(True.necessarily(), True);
        assert_eq!(False.necessarily(), False);
        assert_eq!(Unknown.necessarily(), False);
    }

    #[test]
    fn approximation_ordering() {
        assert!(Unknown.approximates(True));
        assert!(Unknown.approximates(False));
        assert!(Unknown.approximates(Unknown));
        assert!(True.approximates(True));
        assert!(!True.approximates(False));
        assert!(!False.approximates(Unknown));
    }

    #[test]
    fn kleene_implication_matches_definition() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a.implies(b), a.not().or(b));
            }
        }
        // p => p is NOT true under pure Kleene evaluation when p is unknown;
        // only System-C's tautology-first rule promotes it (see eval.rs).
        assert_eq!(Unknown.implies(Unknown), Unknown);
    }

    #[test]
    fn iterator_connectives_respect_identities() {
        assert_eq!(Truth::all(std::iter::empty()), True);
        assert_eq!(Truth::any(std::iter::empty()), False);
        assert_eq!(Truth::all([True, Unknown]), Unknown);
        assert_eq!(Truth::any([False, Unknown]), Unknown);
        assert_eq!(Truth::all([True, False, Unknown]), False);
        assert_eq!(Truth::any([False, True, Unknown]), True);
    }

    #[test]
    fn parsing_round_trips() {
        for t in Truth::ALL {
            assert_eq!(t.to_string().parse::<Truth>().unwrap(), t);
        }
        assert_eq!("YES".parse::<Truth>().unwrap(), True);
        assert_eq!("?".parse::<Truth>().unwrap(), Unknown);
        assert!("maybe".parse::<Truth>().is_err());
    }

    #[test]
    fn weak_acceptance_predicate() {
        assert!(True.is_not_false());
        assert!(Unknown.is_not_false());
        assert!(!False.is_not_false());
    }

    #[test]
    fn from_bool_and_letters() {
        assert_eq!(Truth::from(true), True);
        assert_eq!(Truth::from(false), False);
        assert_eq!(True.letter(), 'T');
        assert_eq!(Unknown.letter(), 'U');
        assert_eq!(Truth::ALL[False.index()], False);
    }
}
