//! A Hilbert-style proof system for System-C.
//!
//! §5 of the paper: "C has been axiomatized. … some of the axioms
//! comprise a set of axioms for classical two-valued logic, thus
//! ensuring that everything provable in two-valued logic is also
//! provable in C. The rest of the axioms give to C the modal
//! interpretation and, in particular, the last axiom restricts C to a
//! system of 'logical necessity'."
//!
//! [Bertram 73]'s exact axiom list is not reproduced in the paper, so
//! this module provides the standard system matching that description —
//! Łukasiewicz's three classical schemas over `{⇒, ¬}`, the modal
//! schemas **K** and **T**, and the logical-necessity (S5-style) schemas
//! **4** and **5** — together with *modus ponens* and *necessitation*
//! (applicable to theorems only). Every schema is machine-checked to be
//! a C-tautology, so the system is **sound** for C-validity:
//! [`Proof::check`] accepts only proofs whose every line is C-valid.
//! Completeness is *not* claimed for this fragment; the complete
//! decision procedure for theoremhood remains the semantic
//! [`crate::eval::is_c_tautology`] (C-tautologies = C-theorems, per
//! [Bertram 73]).

use crate::formula::Formula;
use std::fmt;

#[cfg(test)]
use crate::eval::is_c_tautology;

/// The axiom schemas of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schema {
    /// `A ⇒ (B ⇒ A)` — Łukasiewicz 1.
    K1,
    /// `(A ⇒ (B ⇒ C)) ⇒ ((A ⇒ B) ⇒ (A ⇒ C))` — Łukasiewicz 2.
    K2,
    /// `(¬B ⇒ ¬A) ⇒ (A ⇒ B)` — Łukasiewicz 3 (contraposition).
    K3,
    /// `∇(A ⇒ B) ⇒ (∇A ⇒ ∇B)` — modal distribution (K).
    ModalK,
    /// `∇A ⇒ A` — reflection (T): what is necessarily true is true.
    ModalT,
    /// `∇A ⇒ ∇∇A` — positive introspection (4).
    Modal4,
    /// `¬∇A ⇒ ∇¬∇A` — negative introspection (5): the paper's "logical
    /// necessity" restriction — necessity is itself a definite matter.
    Modal5,
}

impl Schema {
    /// All schemas.
    pub const ALL: [Schema; 7] = [
        Schema::K1,
        Schema::K2,
        Schema::K3,
        Schema::ModalK,
        Schema::ModalT,
        Schema::Modal4,
        Schema::Modal5,
    ];

    /// Instantiates the schema with concrete formulas (unused slots may
    /// receive anything; by convention pass the first operand again).
    pub fn instantiate(self, a: Formula, b: Formula, c: Formula) -> Formula {
        match self {
            Schema::K1 => a.clone().implies(b.implies(a)),
            Schema::K2 => {
                let left = a.clone().implies(b.clone().implies(c.clone()));
                let right = a.clone().implies(b).implies(a.implies(c));
                left.implies(right)
            }
            Schema::K3 => {
                let left = b.clone().not().implies(a.clone().not());
                left.implies(a.implies(b))
            }
            Schema::ModalK => {
                let left = a.clone().implies(b.clone()).nec();
                left.implies(a.nec().implies(b.nec()))
            }
            Schema::ModalT => a.clone().nec().implies(a),
            Schema::Modal4 => a.clone().nec().implies(a.nec().nec()),
            Schema::Modal5 => {
                let not_nec = a.clone().nec().not();
                not_nec.clone().implies(not_nec.nec())
            }
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Schema::K1 => "K1",
            Schema::K2 => "K2",
            Schema::K3 => "K3",
            Schema::ModalK => "K",
            Schema::ModalT => "T",
            Schema::Modal4 => "4",
            Schema::Modal5 => "5",
        };
        f.write_str(s)
    }
}

/// One line of a Hilbert proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// An instance of an axiom schema (with the three instantiation
    /// slots recorded for checkability).
    Axiom {
        /// The schema.
        schema: Schema,
        /// Instantiations of the schema's metavariables.
        slots: Box<(Formula, Formula, Formula)>,
    },
    /// Modus ponens from lines `implication` (`A ⇒ B`) and `antecedent`
    /// (`A`).
    ModusPonens {
        /// Index of the line holding `A ⇒ B`.
        implication: usize,
        /// Index of the line holding `A`.
        antecedent: usize,
    },
    /// Necessitation of an earlier line (theorems only, which is all a
    /// hypothesis-free Hilbert proof contains).
    Necessitation(usize),
}

/// A Hilbert proof: a list of steps, each accompanied by the formula it
/// derives.
#[derive(Debug, Clone, Default)]
pub struct Proof {
    lines: Vec<(Step, Formula)>,
}

/// Errors detected by the proof checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A step referenced a line at or after itself.
    ForwardReference {
        /// The offending line.
        line: usize,
    },
    /// Modus ponens premises do not fit (`A ⇒ B` / `A` mismatch).
    BadModusPonens {
        /// The offending line.
        line: usize,
    },
    /// The recorded formula does not match the step's derivation.
    FormulaMismatch {
        /// The offending line.
        line: usize,
    },
    /// The proof is empty.
    Empty,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::ForwardReference { line } => {
                write!(f, "line {line}: reference to a later line")
            }
            ProofError::BadModusPonens { line } => {
                write!(f, "line {line}: modus ponens premises do not match")
            }
            ProofError::FormulaMismatch { line } => {
                write!(
                    f,
                    "line {line}: recorded formula differs from the derived one"
                )
            }
            ProofError::Empty => write!(f, "empty proof"),
        }
    }
}

impl std::error::Error for ProofError {}

impl Proof {
    /// Starts an empty proof.
    pub fn new() -> Proof {
        Proof::default()
    }

    /// Appends an axiom instance; returns its line index.
    pub fn axiom(&mut self, schema: Schema, a: Formula, b: Formula, c: Formula) -> usize {
        let formula = schema.instantiate(a.clone(), b.clone(), c.clone());
        self.lines.push((
            Step::Axiom {
                schema,
                slots: Box::new((a, b, c)),
            },
            formula,
        ));
        self.lines.len() - 1
    }

    /// Appends a modus-ponens step; returns the new line index.
    ///
    /// # Panics
    /// Panics if the referenced lines do not form an `A ⇒ B` / `A` pair
    /// (construct-time check; [`Proof::check`] re-validates).
    pub fn modus_ponens(&mut self, implication: usize, antecedent: usize) -> usize {
        let Formula::Implies(lhs, rhs) = &self.lines[implication].1 else {
            panic!("line {implication} is not an implication");
        };
        assert_eq!(
            **lhs, self.lines[antecedent].1,
            "antecedent does not match the implication"
        );
        let conclusion = (**rhs).clone();
        self.lines.push((
            Step::ModusPonens {
                implication,
                antecedent,
            },
            conclusion,
        ));
        self.lines.len() - 1
    }

    /// Appends a necessitation step; returns the new line index.
    pub fn necessitation(&mut self, line: usize) -> usize {
        let formula = self.lines[line].1.clone().nec();
        self.lines.push((Step::Necessitation(line), formula));
        self.lines.len() - 1
    }

    /// The formula proved by the last line.
    pub fn conclusion(&self) -> Option<&Formula> {
        self.lines.last().map(|(_, f)| f)
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` iff the proof has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Re-validates every step.
    pub fn check(&self) -> Result<(), ProofError> {
        if self.lines.is_empty() {
            return Err(ProofError::Empty);
        }
        for (i, (step, formula)) in self.lines.iter().enumerate() {
            match step {
                Step::Axiom { schema, slots } => {
                    let (a, b, c) = (*slots.clone()).clone();
                    if schema.instantiate(a, b, c) != *formula {
                        return Err(ProofError::FormulaMismatch { line: i });
                    }
                }
                Step::ModusPonens {
                    implication,
                    antecedent,
                } => {
                    if *implication >= i || *antecedent >= i {
                        return Err(ProofError::ForwardReference { line: i });
                    }
                    let Formula::Implies(lhs, rhs) = &self.lines[*implication].1 else {
                        return Err(ProofError::BadModusPonens { line: i });
                    };
                    if **lhs != self.lines[*antecedent].1 || **rhs != *formula {
                        return Err(ProofError::BadModusPonens { line: i });
                    }
                }
                Step::Necessitation(line) => {
                    if *line >= i {
                        return Err(ProofError::ForwardReference { line: i });
                    }
                    if self.lines[*line].1.clone().nec() != *formula {
                        return Err(ProofError::FormulaMismatch { line: i });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The classic 5-line Hilbert proof of `A ⇒ A`, for any `A`.
pub fn prove_identity(a: Formula) -> Proof {
    let mut proof = Proof::new();
    // 1. A ⇒ ((A ⇒ A) ⇒ A)                      [K1 with B := A ⇒ A]
    let l1 = proof.axiom(
        Schema::K1,
        a.clone(),
        a.clone().implies(a.clone()),
        a.clone(),
    );
    // 2. (A ⇒ ((A⇒A) ⇒ A)) ⇒ ((A ⇒ (A⇒A)) ⇒ (A ⇒ A))   [K2]
    let l2 = proof.axiom(
        Schema::K2,
        a.clone(),
        a.clone().implies(a.clone()),
        a.clone(),
    );
    // 3. (A ⇒ (A⇒A)) ⇒ (A ⇒ A)                 [MP 2,1]
    let l3 = proof.modus_ponens(l2, l1);
    // 4. A ⇒ (A ⇒ A)                            [K1 with B := A]
    let l4 = proof.axiom(Schema::K1, a.clone(), a.clone(), a);
    // 5. A ⇒ A                                  [MP 3,4]
    proof.modus_ponens(l3, l4);
    proof
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarId;

    fn var(i: u32) -> Formula {
        Formula::var(VarId(i))
    }

    #[test]
    fn every_schema_is_a_c_tautology() {
        // soundness of the axioms, machine-checked over small instances
        let instances = [
            (var(0), var(1), var(2)),
            (var(0), var(0), var(0)),
            (var(0).not(), var(1).nec(), var(0)),
            (var(0).implies(var(1)), var(2), var(1)),
        ];
        for schema in Schema::ALL {
            for (a, b, c) in &instances {
                let formula = schema.instantiate(a.clone(), b.clone(), c.clone());
                assert!(
                    is_c_tautology(&formula),
                    "schema {schema} instance is not C-valid: {formula}"
                );
            }
        }
    }

    #[test]
    fn identity_proof_checks_and_is_valid() {
        let proof = prove_identity(var(0));
        assert_eq!(proof.len(), 5);
        assert!(proof.check().is_ok());
        let conclusion = proof.conclusion().unwrap();
        assert_eq!(*conclusion, var(0).implies(var(0)));
        assert!(is_c_tautology(conclusion));
    }

    #[test]
    fn necessitation_of_a_theorem_is_valid() {
        let mut proof = prove_identity(var(0));
        let last = proof.len() - 1;
        proof.necessitation(last);
        assert!(proof.check().is_ok());
        let conclusion = proof.conclusion().unwrap();
        assert_eq!(*conclusion, var(0).implies(var(0)).nec());
        assert!(is_c_tautology(conclusion), "∇(A ⇒ A) is C-valid");
    }

    #[test]
    fn soundness_every_checked_line_is_c_valid() {
        // build a slightly longer proof mixing modal axioms
        let a = var(0);
        let mut proof = prove_identity(a.clone());
        let id = proof.len() - 1; // A ⇒ A
        let nec_id = proof.necessitation(id); // ∇(A ⇒ A)
                                              // T instance on (A ⇒ A): ∇(A⇒A) ⇒ (A⇒A)
        let t = proof.axiom(
            Schema::ModalT,
            a.clone().implies(a.clone()),
            a.clone(),
            a.clone(),
        );
        // MP gives A ⇒ A again (round trip through the modality)
        proof.modus_ponens(t, nec_id);
        assert!(proof.check().is_ok());
        for (_, formula) in &proof.lines {
            assert!(is_c_tautology(formula), "unsound line: {formula}");
        }
    }

    #[test]
    fn checker_rejects_tampered_proofs() {
        let mut proof = prove_identity(var(0));
        // corrupt the final line's formula
        let last = proof.lines.len() - 1;
        proof.lines[last].1 = var(1);
        assert!(matches!(
            proof.check(),
            Err(ProofError::BadModusPonens { .. }) | Err(ProofError::FormulaMismatch { .. })
        ));
    }

    #[test]
    fn checker_rejects_forward_references() {
        let mut proof = Proof::new();
        proof.axiom(Schema::K1, var(0), var(1), var(0));
        proof.lines.push((Step::Necessitation(5), var(0).nec()));
        assert!(matches!(
            proof.check(),
            Err(ProofError::ForwardReference { line: 1 })
        ));
    }

    #[test]
    fn empty_proofs_are_rejected() {
        assert_eq!(Proof::new().check(), Err(ProofError::Empty));
    }

    #[test]
    fn modal_t_blocks_the_converse() {
        // sanity that the system does NOT prove A ⇒ ∇A semantically:
        // the schema set is sound, and A ⇒ ∇A is not C-valid, so no
        // checked proof can conclude it.
        let converse = var(0).implies(var(0).nec());
        assert!(!is_c_tautology(&converse));
    }
}
