//! FD attribute-set closure as a planning substrate.
//!
//! The implication machinery of [`crate::implication`] answers "does
//! `F ⊨ X → Y`?" through System-C proof search; query planners and
//! lattice searches need the same answers *millions of times per
//! second* over one fixed dependency set. This module is that fast
//! path: attribute sets are u64 bitsets ([`ColumnSet`]) and a
//! [`ClosureEngine`] precomputes, per FD set, the full closure of every
//! determinant, so an [`expand`](ClosureEngine::expand) call is a short
//! branch-light fixpoint over a handful of word operations — no
//! allocation, no hashing, no proof objects.
//!
//! The operations mirror what relational planners consume (the MLIR
//! RelAlg `FunctionalDependencies` interface has the same three):
//!
//! * [`expand`](ClosureEngine::expand) — the attribute-set closure
//!   `X⁺` under `F` (Armstrong's `closure`, as a bitset fixpoint);
//! * [`reduce`](ClosureEngine::reduce) — drop every member of a key
//!   whose removal leaves the closure intact, yielding a minimal key;
//! * [`is_superkey`](ClosureEngine::is_superkey) /
//!   [`implies`](ClosureEngine::implies) — key-coveredness and single
//!   FD implication tests, each one `expand` plus a subset check.
//!
//! The engine is deliberately dependency-free (this crate has no
//! dependencies at all) and structurally independent of
//! `fdi-relation`'s `AttrSet`: callers map their attribute ids onto
//! column indices `0..64`. `fdi-core`'s query planner does exactly
//! that to detect key-covered selections, and the standalone
//! throughput micro-benchmark lives in `fdi-bench` (`bench_query`,
//! recorded in `BENCH_query.json`).

use std::fmt;

/// Maximum number of columns a [`ColumnSet`] can hold.
pub const COLUMN_LIMIT: usize = 64;

/// A set of columns (attribute positions `0..64`) as a u64 bitset.
///
/// The planning twin of [`crate::var::VarSet`]: same representation,
/// different domain — columns of a relation scheme rather than
/// propositional variables. All operations are branch-free word ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ColumnSet(pub u64);

impl ColumnSet {
    /// The empty set.
    pub const EMPTY: ColumnSet = ColumnSet(0);

    /// The set `{col}`.
    #[inline]
    pub fn singleton(col: usize) -> ColumnSet {
        debug_assert!(col < COLUMN_LIMIT, "column index out of range");
        ColumnSet(1u64 << col)
    }

    /// The set of columns `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> ColumnSet {
        assert!(n <= COLUMN_LIMIT, "at most {COLUMN_LIMIT} columns");
        if n == COLUMN_LIMIT {
            ColumnSet(u64::MAX)
        } else {
            ColumnSet((1u64 << n) - 1)
        }
    }

    /// `self ∪ {col}`.
    #[inline]
    pub fn with(self, col: usize) -> ColumnSet {
        debug_assert!(col < COLUMN_LIMIT);
        ColumnSet(self.0 | (1u64 << col))
    }

    /// `self \ {col}`.
    #[inline]
    pub fn without(self, col: usize) -> ColumnSet {
        debug_assert!(col < COLUMN_LIMIT);
        ColumnSet(self.0 & !(1u64 << col))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, col: usize) -> bool {
        debug_assert!(col < COLUMN_LIMIT);
        self.0 & (1u64 << col) != 0
    }

    /// `self ∪ other`.
    #[inline]
    pub fn union(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    #[inline]
    pub fn intersect(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 & other.0)
    }

    /// `self \ other`.
    #[inline]
    pub fn difference(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 & !other.0)
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: ColumnSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` iff the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of columns in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The member columns, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let col = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(col)
            }
        })
    }
}

impl fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, col) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{col}")?;
        }
        write!(f, "}}")
    }
}

/// A precomputed closure engine over one fixed FD set.
///
/// Construction saturates the set: for every FD `X → Y` it stores the
/// *full closure* `X⁺` (not just `Y`), so that at query time a firing
/// FD contributes everything it will ever contribute in a single word
/// OR — [`expand`](ClosureEngine::expand) converges in at most
/// `|F|` passes of `|F|` subset tests, and in one pass on the common
/// acyclic sets. This is the "per-FD-set closure cache" of the query
/// planner: build once per (FD set), call `expand` in per-query and
/// per-candidate inner loops.
#[derive(Debug, Clone, Default)]
pub struct ClosureEngine {
    /// `(lhs, lhs⁺)` per FD, with `lhs⁺` fully saturated at build.
    fds: Vec<(ColumnSet, ColumnSet)>,
    /// Union of all columns mentioned by any FD.
    mentioned: ColumnSet,
}

impl ClosureEngine {
    /// Builds the engine from `(lhs, rhs)` pairs. Order is preserved
    /// but irrelevant to every result (closure is order-insensitive).
    pub fn new<I: IntoIterator<Item = (ColumnSet, ColumnSet)>>(fds: I) -> ClosureEngine {
        let raw: Vec<(ColumnSet, ColumnSet)> = fds.into_iter().collect();
        let mentioned = raw
            .iter()
            .fold(ColumnSet::EMPTY, |acc, &(l, r)| acc.union(l).union(r));
        // Saturate: replace each rhs by the full closure of its lhs,
        // computed by the naive fixpoint over the raw rules. Iterating
        // until *these* stop changing is unnecessary — the naive
        // fixpoint below already reaches the true closure.
        let naive_expand = |set: ColumnSet| -> ColumnSet {
            let mut acc = set;
            loop {
                let before = acc;
                for &(lhs, rhs) in &raw {
                    if lhs.is_subset_of(acc) {
                        acc = acc.union(rhs);
                    }
                }
                if acc == before {
                    return acc;
                }
            }
        };
        let fds = raw
            .iter()
            .map(|&(lhs, _)| (lhs, naive_expand(lhs)))
            .collect();
        ClosureEngine { fds, mentioned }
    }

    /// Number of FDs in the set.
    pub fn fd_count(&self) -> usize {
        self.fds.len()
    }

    /// Every column mentioned by some FD (either side).
    pub fn mentioned(&self) -> ColumnSet {
        self.mentioned
    }

    /// The closure `set⁺` under the FD set — every column functionally
    /// determined by `set`. Allocation-free; each pass is `|F|` subset
    /// tests and word ORs, and because the cached right-hand sides are
    /// full closures, a pass that fires an FD jumps straight to
    /// everything that FD's determinant will ever yield.
    #[inline]
    pub fn expand(&self, set: ColumnSet) -> ColumnSet {
        let mut acc = set;
        loop {
            let before = acc;
            for &(lhs, closure) in &self.fds {
                // `closure ⊄ acc` guards the common already-absorbed
                // case without a second subset pass.
                if !closure.is_subset_of(acc) && lhs.is_subset_of(acc) {
                    acc = acc.union(closure);
                }
            }
            if acc == before {
                return acc;
            }
        }
    }

    /// `F ⊨ lhs → rhs`, i.e. `rhs ⊆ lhs⁺`.
    #[inline]
    pub fn implies(&self, lhs: ColumnSet, rhs: ColumnSet) -> bool {
        rhs.is_subset_of(self.expand(lhs))
    }

    /// Whether `candidate` is a superkey for `all` (`all ⊆ candidate⁺`).
    #[inline]
    pub fn is_superkey(&self, candidate: ColumnSet, all: ColumnSet) -> bool {
        all.is_subset_of(self.expand(candidate))
    }

    /// Minimizes `keys`: drops every member whose removal leaves the
    /// closure of the remainder covering `keys⁺`. The result is a
    /// minimal set with the same closure — a minimal key when `keys`
    /// was a superkey. Members are tried in ascending column order, so
    /// the result is deterministic (higher columns survive when two
    /// members are interchangeable).
    pub fn reduce(&self, keys: ColumnSet) -> ColumnSet {
        let target = self.expand(keys);
        let mut current = keys;
        for col in keys.iter() {
            let trial = current.without(col);
            if target.is_subset_of(self.expand(trial)) {
                current = trial;
            }
        }
        current
    }

    /// A minimal key for `all` contained in `candidate`, or `None`
    /// when `candidate` is not a superkey for `all` in the first
    /// place (passing `candidate = all` always succeeds, since
    /// `all ⊆ all⁺`).
    pub fn minimal_key(&self, candidate: ColumnSet, all: ColumnSet) -> Option<ColumnSet> {
        if !self.is_superkey(candidate, all) {
            return None;
        }
        Some(self.reduce(candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        cols.iter().fold(ColumnSet::EMPTY, |s, &c| s.with(c))
    }

    /// The oracle: closure by the textbook fixpoint over raw rules.
    fn oracle_expand(fds: &[(ColumnSet, ColumnSet)], set: ColumnSet) -> ColumnSet {
        let mut acc = set;
        loop {
            let before = acc;
            for &(lhs, rhs) in fds {
                if lhs.is_subset_of(acc) {
                    acc = acc.union(rhs);
                }
            }
            if acc == before {
                return acc;
            }
        }
    }

    #[test]
    fn column_set_algebra() {
        let s = cs(&[0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(2) && !s.contains(1));
        assert_eq!(s.with(1).without(0), cs(&[1, 2, 5]));
        assert_eq!(s.union(cs(&[1])), cs(&[0, 1, 2, 5]));
        assert_eq!(s.intersect(cs(&[2, 5, 7])), cs(&[2, 5]));
        assert_eq!(s.difference(cs(&[0])), cs(&[2, 5]));
        assert!(cs(&[2]).is_subset_of(s));
        assert!(!cs(&[3]).is_subset_of(s));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(ColumnSet::first_n(3), cs(&[0, 1, 2]));
        assert_eq!(ColumnSet::first_n(64).len(), 64);
        assert_eq!(format!("{s}"), "{0,2,5}");
        assert!(ColumnSet::EMPTY.is_empty());
    }

    #[test]
    fn expand_reaches_the_transitive_closure() {
        // A → B, B → C, CD → E
        let fds = vec![
            (cs(&[0]), cs(&[1])),
            (cs(&[1]), cs(&[2])),
            (cs(&[2, 3]), cs(&[4])),
        ];
        let engine = ClosureEngine::new(fds.clone());
        assert_eq!(engine.expand(cs(&[0])), cs(&[0, 1, 2]));
        assert_eq!(engine.expand(cs(&[0, 3])), cs(&[0, 1, 2, 3, 4]));
        assert_eq!(engine.expand(cs(&[4])), cs(&[4]));
        assert!(engine.implies(cs(&[0]), cs(&[2])));
        assert!(!engine.implies(cs(&[0]), cs(&[4])));
        assert!(engine.is_superkey(cs(&[0, 3]), ColumnSet::first_n(5)));
        assert!(!engine.is_superkey(cs(&[0]), ColumnSet::first_n(5)));
        // spot-check against the oracle on all subsets of 5 columns
        for bits in 0u64..32 {
            let set = ColumnSet(bits);
            assert_eq!(engine.expand(set), oracle_expand(&fds, set), "set {set}");
        }
    }

    #[test]
    fn expand_handles_cycles() {
        // A → B, B → A: mutually determining.
        let fds = vec![(cs(&[0]), cs(&[1])), (cs(&[1]), cs(&[0]))];
        let engine = ClosureEngine::new(fds);
        assert_eq!(engine.expand(cs(&[0])), cs(&[0, 1]));
        assert_eq!(engine.expand(cs(&[1])), cs(&[0, 1]));
        assert_eq!(engine.expand(ColumnSet::EMPTY), ColumnSet::EMPTY);
    }

    #[test]
    fn reduce_yields_minimal_keys() {
        // A → B, B → C: {A,B,C} reduces to {A}; {B,C} reduces to {B}.
        let engine = ClosureEngine::new(vec![(cs(&[0]), cs(&[1])), (cs(&[1]), cs(&[2]))]);
        assert_eq!(engine.reduce(cs(&[0, 1, 2])), cs(&[0]));
        assert_eq!(engine.reduce(cs(&[1, 2])), cs(&[1]));
        assert_eq!(engine.reduce(cs(&[2])), cs(&[2]));
        assert_eq!(
            engine.minimal_key(cs(&[0, 1, 2]), ColumnSet::first_n(3)),
            Some(cs(&[0]))
        );
        assert_eq!(engine.minimal_key(cs(&[2]), ColumnSet::first_n(3)), None);
        // reduction preserves the closure
        let keys = cs(&[0, 1, 2]);
        assert_eq!(engine.expand(engine.reduce(keys)), engine.expand(keys));
    }

    #[test]
    fn randomized_agreement_with_the_oracle() {
        // Deterministic pseudo-random FD sets over 10 columns; every
        // subset's cached-engine closure equals the naive fixpoint.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let fds: Vec<(ColumnSet, ColumnSet)> = (0..6)
                .map(|_| {
                    let lhs = ColumnSet(next() & 0x3FF).union(cs(&[(next() % 10) as usize]));
                    let rhs = ColumnSet(next() & 0x3FF).union(cs(&[(next() % 10) as usize]));
                    (lhs, rhs)
                })
                .collect();
            let engine = ClosureEngine::new(fds.clone());
            for _ in 0..64 {
                let set = ColumnSet(next() & 0x3FF);
                assert_eq!(engine.expand(set), oracle_expand(&fds, set));
                let reduced = engine.reduce(set);
                assert!(reduced.is_subset_of(set));
                assert_eq!(engine.expand(reduced), engine.expand(set));
            }
        }
    }

    #[test]
    fn empty_engine_is_identity() {
        let engine = ClosureEngine::new(Vec::new());
        assert_eq!(engine.fd_count(), 0);
        assert_eq!(engine.expand(cs(&[3, 7])), cs(&[3, 7]));
        assert_eq!(engine.reduce(cs(&[3, 7])), cs(&[3, 7]));
        assert!(engine.mentioned().is_empty());
    }
}
