//! # fdi-exec — a deterministic fork/join executor
//!
//! The parallel substrate of the repository: a zero-dependency (std
//! only) fork/join executor that the read-heavy engines of `fdi-core`
//! — TEST-FDs, the certain/possible query evaluators, the indexed
//! chase's violation discovery — shard their work onto. It exists so
//! that every `_par` entry point in the workspace can make one strong
//! promise:
//!
//! > **Determinism contract.** The result of an [`Executor`] run is a
//! > pure function of the work items and the per-item closure. It is
//! > **bit-identical at every thread count** — 1 thread, 8 threads, or
//! > whatever `FDI_THREADS` says — and therefore identical to the
//! > sequential evaluation of the same items in index order.
//!
//! The contract holds because of two rules, both enforced by this API
//! rather than by caller discipline:
//!
//! 1. **work assignment never leaks into results** — workers pull item
//!    *indices* from a shared cursor, so which thread computes which
//!    item is scheduling-dependent, but each item's closure sees only
//!    `(index, &item)` and its result is stored in the slot of its
//!    index;
//! 2. **merges happen in shard order** — [`Executor::map`] returns the
//!    results as a `Vec` ordered by item index, never by completion
//!    order. Callers that fold shard results (group maps, violation
//!    candidates, answer sets) fold that vector left to right, so the
//!    merged structure is the one a single-threaded left-to-right pass
//!    would build.
//!
//! ## Why shard on `RowId`
//!
//! The unit of work the engines shard is a contiguous range of row
//! *slots* (`fdi-relation`'s `Instance::row_id_shards`). Slot ids are
//! stable under deletes — removing a row tombstones its slot and never
//! renumbers survivors — so a shard boundary drawn today still names
//! the same rows after any amount of churn: per-shard structures never
//! need a cross-shard renumbering barrier, and shard iteration order
//! (ascending slot = insertion = display order) concatenated across
//! shards is exactly the sequential iteration order, which is what
//! makes shard-order merges equal to sequential results.
//!
//! ## `FDI_THREADS` semantics
//!
//! [`Executor::from_env`] reads the `FDI_THREADS` environment variable
//! once per call:
//!
//! * unset, empty, unparsable, or `0` → one thread per available CPU
//!   ([`std::thread::available_parallelism`], falling back to 1);
//! * any positive integer → exactly that many threads, even when it
//!   exceeds the CPU count (useful for exercising real interleavings
//!   on small machines — results are unchanged by the contract above).
//!
//! Thread counts are clamped to [`MAX_THREADS`]. A count of 1 runs the
//! work inline on the calling thread: no threads are spawned, so the
//! 1-thread configuration *is* the sequential evaluation, not a
//! simulation of it.
//!
//! ## Example
//!
//! ```
//! use fdi_exec::Executor;
//!
//! let items: Vec<u64> = (0..1000).collect();
//! let seq = Executor::with_threads(1).map(&items, |i, &x| x * x + i as u64);
//! let par = Executor::with_threads(8).map(&items, |i, &x| x * x + i as u64);
//! assert_eq!(seq, par); // bit-identical at any thread count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper clamp on configured thread counts — far above any real CPU
/// count, it only guards against pathological `FDI_THREADS` values.
pub const MAX_THREADS: usize = 1024;

/// The environment variable consulted by [`Executor::from_env`].
pub const THREADS_ENV: &str = "FDI_THREADS";

/// A fixed-width fork/join executor (see the crate docs for the
/// determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor sized by `FDI_THREADS` (see the crate docs for the
    /// full semantics), defaulting to the available parallelism.
    pub fn from_env() -> Executor {
        let configured = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        Executor::with_threads(configured.unwrap_or_else(available_threads))
    }

    /// An executor with exactly `threads` workers (clamped to
    /// `1..=`[`MAX_THREADS`]). The 1-thread executor runs work inline
    /// on the calling thread.
    pub fn with_threads(threads: usize) -> Executor {
        Executor {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results **in item
    /// order** — the shard-order merge of the determinism contract.
    ///
    /// `f` receives `(index, &item)`. Work is distributed over
    /// `min(threads, items.len())` scoped threads via a shared cursor;
    /// with 1 thread (or ≤ 1 item) everything runs inline. A panic in
    /// any worker is propagated to the caller after the scope joins.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                // A worker panic surfaces here, after every sibling
                // joined — resume it so the caller sees the original
                // payload.
                match handle.join() {
                    Ok(local) => {
                        for (i, value) in local {
                            slots[i] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was assigned to exactly one worker"))
            .collect()
    }

    /// [`Executor::map`] over the indices `0..n` — for work that is
    /// naturally addressed by position rather than by a prebuilt item
    /// slice.
    pub fn map_n<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.map(&indices, |_, &i| f(i))
    }

    /// Applies `f` to every item and concatenates the per-item result
    /// vectors **in item order** — the shard-ordered flat-map the
    /// batch-emitting engines (parallel discovery phases producing edge
    /// or candidate batches) fold on.
    ///
    /// Equivalent to `self.map(items, f)` followed by a left-to-right
    /// flatten, so the determinism contract carries over verbatim: the
    /// output is the sequential `items.iter().flat_map(..)` result at
    /// every thread count.
    pub fn flat_map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> Vec<T> + Sync,
    {
        let batches = self.map(items, f);
        let total = batches.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for batch in batches {
            out.extend(batch);
        }
        out
    }
}

/// One thread per available CPU (the `FDI_THREADS`-unset default).
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_at_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 8, 64] {
            let got = Executor::with_threads(threads).map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = Executor::with_threads(2).map(&items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let exec = Executor::with_threads(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn flat_map_concatenates_in_item_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().flat_map(|&x| vec![x; x % 4]).collect();
        for threads in [1, 2, 3, 8] {
            let got = Executor::with_threads(threads).flat_map(&items, |_, &x| vec![x; x % 4]);
            assert_eq!(got, expected, "threads = {threads}");
        }
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::with_threads(4)
            .flat_map(&empty, |_, &x| vec![x])
            .is_empty());
    }

    #[test]
    fn map_n_matches_map_over_indices() {
        let exec = Executor::with_threads(4);
        assert_eq!(exec.map_n(5, |i| i * i), vec![0, 1, 4, 9, 16]);
        assert!(exec.map_n(0, |i| i).is_empty());
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
        assert_eq!(Executor::with_threads(usize::MAX).threads(), MAX_THREADS);
        assert_eq!(Executor::with_threads(3).threads(), 3);
    }

    #[test]
    fn workers_never_exceed_items() {
        // 100 items on 8 threads: every index computed exactly once.
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Executor::with_threads(8).map(&items, |_, &i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Executor::with_threads(4).map(&items, |_, &i| {
                assert!(i != 17, "boom at 17");
                i
            });
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn shared_state_types_are_sync() {
        // The engines share &Instance-like structures across workers;
        // this is the compile-time shape of that requirement.
        fn assert_sync<T: Sync>() {}
        assert_sync::<Executor>();
    }
}
