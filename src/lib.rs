//! # fd-incomplete
//!
//! A complete, from-scratch Rust implementation of
//! *Yannis Vassiliou, "Functional Dependencies and Incomplete
//! Information", VLDB 1980*: functional dependency semantics over
//! relations with null values.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`logic`] (`fdi-logic`) — three-valued truth values and Bertram's
//!   System-C, the modal propositional logic for unknown outcomes that
//!   §5 of the paper reduces FD reasoning to;
//! * [`relation`] (`fdi-relation`) — the relational substrate: schemas,
//!   finite domains, marked nulls, NEC union–find, instances, and
//!   completion enumeration;
//! * [`core`] (`fdi-core`) — the paper's contribution: the extended FD
//!   interpretation (Proposition 1), strong/weak satisfiability, the
//!   TEST-FDs algorithm (Figure 3, Theorems 2–3), the NS-rule chase and
//!   its Church–Rosser extension (Theorem 4), Armstrong's system
//!   (Theorem 1), normalization, and least-extension queries;
//! * [`gen`] (`fdi-gen`) — seeded workload generators for the
//!   experiment harness;
//! * [`store`] (`fdi-store`) — the durability layer: a write-ahead op
//!   journal, crash recovery, and deterministic fault injection;
//! * [`serve`] (`fdi-serve`) — the epoch-split serving layer: immutable
//!   published snapshots under a single group-committing writer;
//! * [`obs`] (`fdi-obs`) — the zero-dependency observability layer:
//!   atomic counters and gauges, log₂ latency histograms, scoped span
//!   timers, and a bounded structured event ring, all behind a cheap
//!   [`obs::Recorder`] handle.
//!
//! ## Quick start
//!
//! ```
//! use fd_incomplete::prelude::*;
//!
//! let schema = Schema::builder("R")
//!     .attribute("emp", ["e1", "e2", "e3"])
//!     .attribute("dept", ["d1", "d2"])
//!     .attribute("mgr", ["m1", "m2"])
//!     .build()
//!     .unwrap();
//! let fds = FdSet::parse(&schema, "emp -> dept\ndept -> mgr").unwrap();
//! // `-` is a null: e2's department is unknown.
//! let r = Instance::parse(schema, "e1 d1 m1\ne2 - m1\ne3 d2 m2").unwrap();
//!
//! // Not strongly satisfied (the null may collide with d2 under e3's
//! // manager), but weakly satisfiable: some completion obeys both FDs.
//! assert!(fd_incomplete::core::testfd::check_strong(&r, &fds).is_err());
//! assert!(fd_incomplete::core::chase::weakly_satisfiable_via_chase(&fds, &r));
//! ```
//!
//! ## Durability
//!
//! A maintained [`core::update::Database`] lives in memory; the
//! [`store`] layer makes its history durable. Wrap it in a
//! [`store::JournaledDatabase`] and every **accepted** mutation is
//! appended to a write-ahead op journal (rejected ops journal nothing)
//! before the call returns. After a crash, [`store::Journal::recover`]
//! replays the journal onto its genesis snapshot and — because update
//! execution is deterministic at every thread count — rebuilds the
//! database bit-identically: same `RowId`s, same null ids, same NEC
//! classes, same index buckets. A torn final write is detected and
//! truncated; damage *inside* the synced log is a typed
//! [`store::RecoverError::Corrupt`] naming the byte offset, never a
//! panic and never a silently wrong database. Periodic
//! [`store::JournaledDatabase::checkpoint`] calls atomically collapse
//! the log into a fresh snapshot, bounding replay time. The exact
//! guarantees — what `sync` promises and what it does not — are
//! documented in the [`store`] crate root.
//!
//! ## Serving
//!
//! The [`serve`] layer splits the database into immutable **epochs**
//! for readers and a private successor state for a single
//! [`serve::Writer`]. Any number of threads hold [`serve::Reader`]
//! handles and query the current [`serve::Epoch`] through the sharded
//! `select_par`/`check_par` paths; the writer stages deltas invisibly,
//! **group-commits** them to the op journal (one batch record, one
//! sync — [`store::SyncPolicy::GroupCommit`]), and only then publishes
//! the next epoch with an atomic swap. Readers never block the writer
//! and can never observe a torn or FD-violating state: every snapshot
//! equals a sequential replay of some accepted-op prefix ending at a
//! batch boundary, deterministically at every thread count — and crash
//! recovery restores exactly the last fully-synced boundary. The full
//! consistency contract (what a reader may and may not observe, the
//! publication ↔ checkpoint mapping) is documented in the [`serve`]
//! crate root.
//!
//! ## Query compilation
//!
//! The reference query path walks the [`core::query::Query`] tree per
//! row and re-derives everything it needs — mentioned constants,
//! domain candidate sets, NEC class groupings — from scratch on every
//! evaluation. [`core::query::CompiledQuery`] moves all of that to
//! compile time: the tree is constant-folded and flattened into a
//! branch-light postfix op program, the per-attribute
//! mentioned-constant and fresh-representative candidate sets are
//! precomputed against the instance's domains, and an FD-closure
//! analysis (the `u64`-bitset [`logic::closure::ClosureEngine`])
//! annotates the plan with which scope attributes are functionally
//! determined. At evaluation time, rows whose in-scope **signature**
//! (constants, NEC class roots, `nothing`s) repeats a previously seen
//! one replay the cached verdict from a [`core::query::SignatureMemo`]
//! — exact, because a verdict is a pure function of that signature.
//! Null-free rows skip everything and evaluate classically. The result
//! is bit-identical to [`core::query::eval_signature`] /
//! [`core::query::select`] — verdicts, answer ordering, and
//! first-error semantics, at every thread count — which the
//! `query_equiv` suite holds across randomized workloads.
//!
//! On top of the compiled plan, [`core::query::IncrementalSelection`]
//! keeps a materialized sure/maybe/no answer set current under
//! [`core::update::Database`] mutations by re-evaluating only the rows
//! each accepted op actually changed (plus, after an NEC merge, the
//! rows holding in-scope nulls). The serving layer wires both in:
//! [`serve::Epoch::select`] answers through a per-epoch plan cache
//! keyed by the query's canonical encoding, and
//! [`serve::Writer::watch`] maintains registered queries incrementally
//! across updates, publishing their answer sets with each epoch.
//!
//! ## Semantics
//!
//! The null-comparison behavior of TEST-FDs is **pluggable**: the
//! [`core::semantics::Semantics`] trait captures, as four boolean
//! axes, everything the engine needs to know about a convention — when
//! two values *agree* (trigger side), when they *positively disagree*
//! (violation side), whether a null on a determinant forces the
//! pairwise fallback, and whether nulls group solitarily. Every check
//! variant ([`core::testfd::check`], the sorted/hashed/grouped paths,
//! [`core::testfd::check_par`], [`core::testfd::pair_violates`]) is
//! generic over it and monomorphizes for the zero-sized impls, so the
//! paper's two conventions pay nothing for the generality (the
//! `bench_chase` guard holds enum vs. ZST dispatch within noise).
//!
//! Four conventions are registered
//! ([`core::semantics::SemanticsKind::ALL`]), forming a lattice of
//! strictness:
//!
//! * **strong** — Vassiliou's pessimistic convention (Theorem 2): a
//!   null potentially matches anything;
//! * **null-marker** — the FDs-with-null-markers semantics in the
//!   style of *Badia & Lemire, "Functional dependencies with null
//!   markers"* (Comput. J. 2015; arXiv:1404.4963): marked nulls agree
//!   only within an NEC class, but a null still positively differs
//!   from every constant;
//! * **weak** — Vassiliou's optimistic convention (Theorem 3): nulls
//!   agree within a class and never positively disagree;
//! * **nfd** — an Atzeni–Morfuni-style literal reading (*Atzeni &
//!   Morfuni, "Functional dependencies and constraints on null values
//!   in database relations"*, Inf. & Control 1986): only total,
//!   constant-for-constant rows constrain anything.
//!
//! Strong satisfaction implies null-marker satisfaction implies weak
//! implies nfd — `tests/conventions.rs` holds the inclusions on random
//! workloads, and [`gen::disagreement_workload`] plants instances
//! separating every adjacent pair. [`core::semantics::compare`] runs
//! all four side by side with per-FD canonical witnesses (the
//! `fdi semantics` CLI verb and the serve-session `semantics` command
//! render it), and [`core::satisfy::report`] carries the per-semantics
//! verdicts alongside the paper's strong/weak pair.
//!
//! ## Observability
//!
//! Every layer is instrumented through [`obs`] (`fdi-obs`), a std-only
//! metrics and tracing facility in the engine's own idiom: no
//! background threads, no global state, no dependencies. An
//! [`obs::Recorder`] is a cloneable handle that is either **live**
//! (shared atomic counters, gauges, fixed-bucket log₂ latency
//! histograms, a bounded structured event ring) or the **noop**
//! ([`obs::Recorder::noop`], the default everywhere) whose record
//! methods are branch-predictable no-ops — engines pay nothing unless a
//! sink is installed, and the determinism suite holds that a noop
//! recorder changes no engine output.
//!
//! Wiring points: [`core::update::Database::set_recorder`] (op
//! acceptance + index deltas), [`store::JournaledDatabase::set_recorder`]
//! (journal appends, group-commit batches, sync latency),
//! [`store::Journal::recover_with`] (torn-tail truncations, replayed
//! ops), [`serve::Writer::set_recorder`] / [`serve::Reader::set_recorder`]
//! (publish latency, epoch gauges, snapshot reads), the recorded chase
//! entry points ([`core::chase::chase_indexed_par_with`],
//! [`core::chase::extended_chase_par_with`]), the recorded TEST-FDs
//! entry points ([`core::testfd::check_with`],
//! [`core::testfd::check_par_with`]), and
//! [`serve::Epoch::select_recorded`] (plan-cache, NEC-signature memo,
//! and classical-fast-path traffic). Each published [`serve::Epoch`]
//! carries the writer's frozen [`obs::MetricsSnapshot`]
//! ([`serve::Epoch::metrics`]).
//!
//! Metrics are split into a **deterministic** registry (bit-identical
//! across `FDI_THREADS` settings and reader counts for the same op
//! stream — op tallies, index deltas, journal record counts, chase
//! pass/union counts, epoch gauges) and a **nondeterministic** one
//! (wall-clock histograms and reader-driven traffic); the split is part
//! of the exposition format ([`obs::MetricsSnapshot::render_text`], a
//! stable Prometheus-style text form, and
//! [`obs::MetricsSnapshot::render_json`]) and is pinned by
//! `tests/obs_determinism.rs`. The `fdi stats <journal>` verb and the
//! `metrics` command of `fdi serve` expose both live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fdi_core as core;
pub use fdi_gen as gen;
pub use fdi_logic as logic;
pub use fdi_obs as obs;
pub use fdi_relation as relation;
pub use fdi_serve as serve;
pub use fdi_store as store;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use fdi_core::chase::{chase_plain, extended_chase, extended_chase_par, Scheduler};
    pub use fdi_core::fd::{Fd, FdSet};
    pub use fdi_core::prop1;
    pub use fdi_core::satisfy;
    pub use fdi_core::semantics::{self, Semantics, SemanticsKind};
    pub use fdi_core::testfd::{self, Convention};
    pub use fdi_core::update::{Database, Enforcement, Policy};
    pub use fdi_logic::truth::Truth;
    pub use fdi_obs::{MetricsSnapshot, Recorder};
    pub use fdi_relation::instance::Instance;
    pub use fdi_relation::schema::Schema;
    pub use fdi_relation::{AttrId, AttrSet, NullId, Value};
    pub use fdi_serve::{Epoch, Reader, ServeConfig, ServeOp, Writer};
    pub use fdi_store::{Journal, JournaledDatabase, SyncPolicy};
}
