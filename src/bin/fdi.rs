//! `fdi` — a command-line front end for fd-incomplete.
//!
//! Reads a database description file with three `%`-marked sections —
//! schema, dependencies, instance — and answers the paper's questions
//! about it:
//!
//! ```text
//! %schema
//! relation Staff
//! attr emp  ada bob cyd
//! attr dept sales eng
//! attr mgr  mia noa
//!
//! %fds
//! emp -> dept
//! dept -> mgr
//!
//! %instance
//! ada sales mia
//! bob -     mia
//! ```
//!
//! Analysis commands take a description file:
//! `fdi <report|strong|weak|chase|chase-extended|keys|normalize|exhaustion> <file>`.
//!
//! `fdi semantics <file-or-journal>` runs the differential TEST-FDs
//! comparison (`fdi_core::semantics::compare`) across every registered
//! null-comparison convention — strong, null-marker, weak, NFD — and
//! prints per-convention verdicts, per-FD canonical least-pair
//! witnesses, and the pairwise agree/disagree matrix. The path is
//! parsed as a description file first and recovered as an op journal
//! otherwise.
//!
//! Durability commands work a write-ahead op journal (see `fdi-store`):
//!
//! * `fdi journal-apply <journal> <ops-file> [desc-file]` — create the
//!   journal from the description (first run) or recover it, then apply
//!   the ops file: one op per line, `insert <tok>…`, `delete <row>`,
//!   `modify <row> <attr> <token>`, `resolve <row> <attr> <token>`,
//!   `compact`, with 1-based display-order row numbers. Rejected ops
//!   are reported and skipped; accepted ops are durable on exit.
//! * `fdi recover <journal>` — replay the journal and print the
//!   recovered table (truncating a torn tail; corruption is a hard
//!   error naming the byte offset).
//! * `fdi checkpoint <journal>` — recover, then atomically collapse the
//!   journal into a fresh snapshot, bounding future replay time.
//! * `fdi serve <journal> [desc-file] [--batch N] [--tcp ADDR]` — an
//!   interactive epoch-split serving session (see `fdi-serve`): the
//!   mutation verbs above **stage** against the writer's private
//!   successor state, `commit` group-commits and publishes the next
//!   epoch, and `table` / `select <attr> <value>` / `epoch` read the
//!   *published* snapshot — staged ops are invisible until committed.
//!   `quit` (or EOF) publishes pending work and ends the session;
//!   with `--tcp`, clients connect in turn (a dropped client or failed
//!   accept does not stop the server) and `shutdown` stops it.
//!   `--batch N` sets the group-commit width (default 64). The
//!   `metrics` command (`metrics json` for JSON) renders the session's
//!   live `fdi-obs` snapshot — epoch gauges, publish counters, journal
//!   sync counters, plan-cache/memo traffic — in the stable exposition
//!   format.
//! * `fdi stats <journal> [--json]` — recover the journal with a live
//!   recorder and print the observability snapshot of recovery plus a
//!   recorded TEST-FDs sweep (both conventions) over the recovered
//!   state: replayed-op and torn-tail counters, chase work if
//!   enforcement chased, TEST-FD row-scan tallies.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, corrupt journal,
//! unsatisfiable description), `2` usage or input-parse error.

use fd_incomplete::core::interp::DEFAULT_BUDGET;
use fd_incomplete::core::query::Query;
use fd_incomplete::core::semantics::{self, SemanticsKind};
use fd_incomplete::core::update::{Database, Policy};
use fd_incomplete::core::{armstrong, chase, normalize, satisfy, subst, testfd};
use fd_incomplete::obs::Recorder;
use fd_incomplete::prelude::*;
use fd_incomplete::relation::rowid::RowId;
use fd_incomplete::serve::{self, ServeOp, Staged};
use fd_incomplete::store::{
    FileStorage, Journal, JournaledDatabase, JournaledError, Storage, SyncPolicy,
};
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure, split by exit code: parse/usage problems exit `2`,
/// runtime failures exit `1`.
#[derive(Debug)]
enum CliError {
    /// Malformed user input (description, ops file, unknown command).
    Parse(String),
    /// A well-formed request that failed (I/O, corrupt journal, …).
    Runtime(String),
}

impl CliError {
    fn parse(msg: impl Into<String>) -> CliError {
        CliError::Parse(msg.into())
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

/// A parsed database description file.
struct Description {
    schema: Arc<Schema>,
    fds: FdSet,
    instance: Instance,
}

fn parse_description(text: &str) -> Result<Description, String> {
    let mut section = String::new();
    let mut relation_name = "R".to_string();
    let mut attrs: Vec<(String, Vec<String>)> = Vec::new();
    let mut fd_lines: Vec<String> = Vec::new();
    let mut instance_lines: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('%') {
            section = name.trim().to_lowercase();
            continue;
        }
        match section.as_str() {
            "schema" => {
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("relation") => {
                        relation_name = words
                            .next()
                            .ok_or_else(|| format!("line {}: relation needs a name", lineno + 1))?
                            .to_string();
                    }
                    Some("attr") => {
                        let name = words
                            .next()
                            .ok_or_else(|| format!("line {}: attr needs a name", lineno + 1))?
                            .to_string();
                        let values: Vec<String> = words.map(str::to_string).collect();
                        attrs.push((name, values));
                    }
                    other => {
                        return Err(format!(
                            "line {}: expected 'relation' or 'attr', found {other:?}",
                            lineno + 1
                        ))
                    }
                }
            }
            "fds" => fd_lines.push(line.to_string()),
            "instance" => instance_lines.push(line.to_string()),
            other => {
                return Err(format!(
                    "line {}: content before a %section (or unknown section {other:?})",
                    lineno + 1
                ))
            }
        }
    }
    if attrs.is_empty() {
        return Err("no attributes declared in %schema".to_string());
    }
    let mut builder = Schema::builder(relation_name);
    for (name, values) in attrs {
        builder = if values.is_empty() {
            builder.attribute_unbounded(name)
        } else {
            builder.attribute(name, values)
        };
    }
    let schema = builder.build().map_err(|e| e.to_string())?;
    let fds = FdSet::parse(&schema, &fd_lines.join("\n")).map_err(|e| e.to_string())?;
    let instance =
        Instance::parse(schema.clone(), &instance_lines.join("\n")).map_err(|e| e.to_string())?;
    Ok(Description {
        schema,
        fds,
        instance,
    })
}

fn run(command: &str, desc: &Description) -> Result<(), CliError> {
    let Description {
        schema,
        fds,
        instance,
    } = desc;
    match command {
        "report" => {
            println!("{}", instance.render(true));
            let report = satisfy::report(fds, instance, DEFAULT_BUDGET)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            println!("{}", satisfy::render_report(&report, fds, instance));
        }
        "strong" => match testfd::check_strong(instance, fds) {
            Ok(()) => println!("strongly satisfied"),
            Err(v) => println!("NOT strongly satisfied: {v}"),
        },
        "weak" => {
            if chase::weakly_satisfiable_via_chase(fds, instance) {
                println!("weakly satisfiable (some completion obeys every dependency)");
            } else {
                println!("NOT weakly satisfiable (every completion violates the dependencies)");
            }
        }
        "chase" => {
            let result = chase::chase_plain(instance, fds);
            for event in &result.events {
                println!("applied: {event}");
            }
            println!("{}", result.instance.render(true));
            println!(
                "minimally incomplete after {} passes, {} events",
                result.passes,
                result.events.len()
            );
        }
        "chase-extended" => {
            // The extended closure is order-insensitive (Theorem 4a),
            // so the FDI_THREADS-sized parallel engine is safe here —
            // same canonical result at every thread count.
            let outcome = chase::extended_chase_par(instance, fds, &fdi_exec::Executor::from_env());
            println!("{}", outcome.instance.render(true));
            if outcome.has_nothing() {
                println!(
                    "{} nothing class(es): the dependencies are contradicted (Theorem 4b)",
                    outcome.nothing_classes
                );
            } else {
                println!("no nothing values: weakly satisfiable (Theorem 4b)");
            }
        }
        "keys" => {
            let all = AttrSet::first_n(schema.arity());
            for key in armstrong::candidate_keys(all, fds) {
                println!("key: {}", schema.render_attrs(key));
            }
        }
        "normalize" => {
            let all = AttrSet::first_n(schema.arity());
            println!("BCNF: {}", normalize::is_bcnf(fds, all));
            let d = normalize::bcnf_decompose(fds, all);
            for c in &d {
                println!("component: {}", schema.render_attrs(*c));
            }
            println!("lossless: {}", normalize::is_lossless(fds, all, &d));
            println!(
                "dependency preserving: {}",
                normalize::preserves_dependencies(fds, &d)
            );
        }
        "exhaustion" => {
            let sites = subst::detect_domain_exhaustion(fds, instance)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if sites.is_empty() {
                println!("no [F2] domain-exhaustion sites: the weak pipelines are exact here");
            } else {
                for s in sites {
                    // displayed row numbers are 1-based positions in the
                    // printed table, not raw slot ids
                    let pos = instance
                        .row_ids()
                        .position(|id| id == s.row)
                        .ok_or_else(|| {
                            CliError::runtime(format!(
                                "internal inconsistency: [F2] site names {} (fd #{}), \
                                 which is not a live row of this instance",
                                s.row,
                                s.fd_index + 1
                            ))
                        })?;
                    println!("[F2] at row {} under fd #{}", pos + 1, s.fd_index + 1);
                }
            }
        }
        other => {
            return Err(CliError::parse(format!(
                "unknown command {other:?} (try: report, strong, weak, chase, chase-extended, \
                 keys, normalize, exhaustion, journal-apply, recover, checkpoint, stats, serve)"
            )))
        }
    }
    Ok(())
}

/// One line of a `journal-apply` ops file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OpLine {
    Insert(Vec<String>),
    Delete(usize),
    Modify {
        pos: usize,
        attr: String,
        token: String,
    },
    Resolve {
        pos: usize,
        attr: String,
        token: String,
    },
    Compact,
}

/// Parses an ops file: one op per non-empty, non-`#` line. Row numbers
/// are 1-based positions in display order at application time.
fn parse_ops(text: &str) -> Result<Vec<OpLine>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or_default();
        let parse_pos = |w: Option<&str>| -> Result<usize, String> {
            let text = w.ok_or_else(|| format!("line {}: missing row number", lineno + 1))?;
            let pos: usize = text
                .parse()
                .map_err(|_| format!("line {}: bad row number {text:?}", lineno + 1))?;
            if pos == 0 {
                return Err(format!("line {}: row numbers are 1-based", lineno + 1));
            }
            Ok(pos)
        };
        let op = match verb {
            "insert" => {
                let tokens: Vec<String> = words.map(str::to_string).collect();
                if tokens.is_empty() {
                    return Err(format!("line {}: insert needs tokens", lineno + 1));
                }
                OpLine::Insert(tokens)
            }
            "delete" => {
                let pos = parse_pos(words.next())?;
                if words.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                OpLine::Delete(pos)
            }
            "modify" | "resolve" => {
                let pos = parse_pos(words.next())?;
                let attr = words
                    .next()
                    .ok_or_else(|| format!("line {}: missing attribute name", lineno + 1))?
                    .to_string();
                let token = words
                    .next()
                    .ok_or_else(|| format!("line {}: missing value token", lineno + 1))?
                    .to_string();
                if verb == "modify" {
                    OpLine::Modify { pos, attr, token }
                } else {
                    OpLine::Resolve { pos, attr, token }
                }
            }
            "compact" => {
                if words.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                OpLine::Compact
            }
            other => {
                return Err(format!(
                    "line {}: unknown op {other:?} (insert, delete, modify, resolve, compact)",
                    lineno + 1
                ))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Opens the journal at `path`: recovers it if it holds bytes,
/// otherwise creates it from the description file (required on first
/// use). Reports what recovery did.
fn open_journal(
    path: &str,
    desc_path: Option<&str>,
) -> Result<(Database, Journal<FileStorage>), CliError> {
    let storage = FileStorage::open(path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {path}: {e}")))?;
    if storage.is_empty() {
        let desc_path = desc_path.ok_or_else(|| {
            CliError::parse(format!(
                "journal {path} is empty: a description file is required to create it"
            ))
        })?;
        let text = std::fs::read_to_string(desc_path)
            .map_err(|e| CliError::runtime(format!("cannot read {desc_path}: {e}")))?;
        let desc = parse_description(&text).map_err(CliError::Parse)?;
        let db = Database::new(desc.instance, desc.fds, Policy::default()).map_err(|e| {
            CliError::runtime(format!("description is not a valid starting database: {e}"))
        })?;
        let journal = Journal::create(storage, &db)
            .map_err(|e| CliError::runtime(format!("cannot create journal {path}: {e}")))?;
        println!("created journal {path} from {desc_path}");
        Ok((db, journal))
    } else {
        let recovered = Journal::recover(storage)
            .map_err(|e| CliError::runtime(format!("cannot recover journal {path}: {e}")))?;
        if let Some(torn) = recovered.torn {
            println!(
                "truncated a torn tail at byte {} ({} bytes dropped)",
                torn.offset, torn.dropped
            );
        }
        println!("recovered {path}: {} op(s) replayed", recovered.ops.len());
        Ok((recovered.db, recovered.journal))
    }
}

/// The 1-based display-order row → RowId mapping of the live instance.
fn row_at(db: &Database, pos: usize) -> Option<RowId> {
    db.instance().row_ids().nth(pos - 1)
}

/// Applies parsed ops to a journaled database. Database rejections are
/// reported and skipped (the journal records accepted history only);
/// journal failures abort.
fn apply_ops(
    jdb: &mut JournaledDatabase<FileStorage>,
    ops: &[OpLine],
) -> Result<(usize, usize), CliError> {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut reject = |line: usize, msg: String| {
        println!("op {line}: rejected: {msg}");
        rejected += 1;
    };
    for (i, op) in ops.iter().enumerate() {
        let line = i + 1;
        let attr_of = |jdb: &JournaledDatabase<FileStorage>, name: &str| {
            jdb.db().instance().schema().attr_id(name)
        };
        let outcome = match op {
            OpLine::Insert(tokens) => {
                let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
                jdb.insert(&refs).map(|_| ())
            }
            OpLine::Delete(pos) => match row_at(jdb.db(), *pos) {
                Some(row) => jdb.delete(row).map(|_| ()),
                None => {
                    reject(line, format!("no row {pos}"));
                    continue;
                }
            },
            OpLine::Modify { pos, attr, token } | OpLine::Resolve { pos, attr, token } => {
                let row = match row_at(jdb.db(), *pos) {
                    Some(row) => row,
                    None => {
                        reject(line, format!("no row {pos}"));
                        continue;
                    }
                };
                let attr = match attr_of(jdb, attr) {
                    Ok(a) => a,
                    Err(e) => {
                        reject(line, e.to_string());
                        continue;
                    }
                };
                if matches!(op, OpLine::Modify { .. }) {
                    jdb.modify(row, attr, token).map(|_| ())
                } else {
                    jdb.resolve_null(row, attr, token).map(|_| ())
                }
            }
            OpLine::Compact => jdb.compact().map(|_| ()),
        };
        match outcome {
            Ok(()) => accepted += 1,
            Err(JournaledError::Update(e)) => reject(line, e.to_string()),
            Err(e) => {
                return Err(CliError::runtime(format!(
                    "op {line}: journal failure, aborting: {e}"
                )))
            }
        }
    }
    Ok((accepted, rejected))
}

fn run_journal_apply(
    journal_path: &str,
    ops_path: &str,
    desc_path: Option<&str>,
) -> Result<(), CliError> {
    let ops_text = std::fs::read_to_string(ops_path)
        .map_err(|e| CliError::runtime(format!("cannot read {ops_path}: {e}")))?;
    let ops = parse_ops(&ops_text).map_err(CliError::Parse)?;
    let (db, journal) = open_journal(journal_path, desc_path)?;
    let mut jdb = JournaledDatabase::resume(db, journal, SyncPolicy::EveryOp);
    let (accepted, rejected) = apply_ops(&mut jdb, &ops)?;
    println!("{}", jdb.db().instance().render(true));
    println!("{accepted} op(s) applied and durable, {rejected} rejected");
    Ok(())
}

fn run_recover(journal_path: &str) -> Result<(), CliError> {
    let storage = FileStorage::open(journal_path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {journal_path}: {e}")))?;
    let recovered = Journal::recover(storage)
        .map_err(|e| CliError::runtime(format!("cannot recover journal {journal_path}: {e}")))?;
    println!("{}", recovered.db.instance().render(true));
    match recovered.torn {
        Some(torn) => println!(
            "recovered {} op(s); truncated a torn tail at byte {} ({} bytes dropped)",
            recovered.ops.len(),
            torn.offset,
            torn.dropped
        ),
        None => println!("recovered {} op(s); journal is clean", recovered.ops.len()),
    }
    Ok(())
}

fn run_checkpoint(journal_path: &str) -> Result<(), CliError> {
    let (db, mut journal) = open_journal(journal_path, None)?;
    journal
        .checkpoint(&db)
        .map_err(|e| CliError::runtime(format!("checkpoint failed (journal unchanged): {e}")))?;
    println!(
        "checkpointed {journal_path}: {} live row(s) snapshotted, replay log cleared",
        db.instance().len()
    );
    Ok(())
}

/// The `stats` verb's payload: recovers the journal under a live
/// recorder, then runs a recorded TEST-FDs sweep over the recovered
/// state — one check per registered null-comparison semantics, in
/// lattice order — and renders the resulting snapshot (the
/// per-semantics tallies land on the labelled `testfd_checks`
/// counters).
fn stats_report(journal_path: &str, json: bool) -> Result<String, CliError> {
    let storage = FileStorage::open(journal_path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {journal_path}: {e}")))?;
    if storage.is_empty() {
        return Err(CliError::runtime(format!(
            "journal {journal_path} is empty: nothing to report"
        )));
    }
    let rec = Recorder::enabled();
    let recovered = Journal::recover_with(storage, &rec)
        .map_err(|e| CliError::runtime(format!("cannot recover journal {journal_path}: {e}")))?;
    let db = recovered.db;
    // A recorded satisfiability sweep over the recovered state: the
    // verdicts are in the journal's history already, so only the
    // tallies (checks, rows scanned, fallback hits) are of interest.
    for kind in SemanticsKind::ALL {
        let _ = testfd::check_with(db.instance(), db.fds(), kind, &rec);
    }
    let snap = rec.snapshot();
    Ok(if json {
        let mut text = snap.render_json();
        text.push('\n');
        text
    } else {
        snap.render_text()
    })
}

fn run_stats(journal_path: &str, json: bool) -> Result<(), CliError> {
    print!("{}", stats_report(journal_path, json)?);
    Ok(())
}

/// Opens an epoch-split serving pair over the journal at `path`:
/// recovers it if it holds bytes, otherwise creates it from the
/// description file (required on first use).
fn open_writer(
    path: &str,
    desc_path: Option<&str>,
    max_batch: usize,
) -> Result<(serve::Writer<FileStorage>, serve::Reader), CliError> {
    let storage = FileStorage::open(path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {path}: {e}")))?;
    let cfg = ServeConfig {
        max_batch,
        checkpoint_every: None,
    };
    let exec = fdi_exec::Executor::from_env();
    if storage.is_empty() {
        let desc_path = desc_path.ok_or_else(|| {
            CliError::parse(format!(
                "journal {path} is empty: a description file is required to create it"
            ))
        })?;
        let text = std::fs::read_to_string(desc_path)
            .map_err(|e| CliError::runtime(format!("cannot read {desc_path}: {e}")))?;
        let desc = parse_description(&text).map_err(CliError::Parse)?;
        let db = Database::new(desc.instance, desc.fds, Policy::default()).map_err(|e| {
            CliError::runtime(format!("description is not a valid starting database: {e}"))
        })?;
        let pair = serve::Writer::create(db, storage, cfg, exec)
            .map_err(|e| CliError::runtime(format!("cannot create journal {path}: {e}")))?;
        println!("created journal {path} from {desc_path}");
        Ok(pair)
    } else {
        let pair = serve::Writer::recover(storage, cfg, exec)
            .map_err(|e| CliError::runtime(format!("cannot recover journal {path}: {e}")))?;
        println!("recovered {path}: {} op(s) replayed", pair.0.ops_applied());
        Ok(pair)
    }
}

/// Stages one parsed mutation line against the writer's successor
/// state, resolving 1-based display positions and attribute names
/// against that state (staged inserts are addressable immediately).
fn stage_op_line<S: Storage, W: IoWrite>(
    writer: &mut serve::Writer<S>,
    op: &OpLine,
    out: &mut W,
) -> Result<(), CliError> {
    let resolve_row = |writer: &serve::Writer<S>, pos: usize| row_at(writer.db(), pos);
    let resolve_attr =
        |writer: &serve::Writer<S>, name: &str| writer.db().instance().schema().attr_id(name);
    let serve_op = match op {
        OpLine::Insert(tokens) => ServeOp::Insert(tokens.clone()),
        OpLine::Delete(pos) => match resolve_row(writer, *pos) {
            Some(row) => ServeOp::Delete(row),
            None => {
                writeln!(out, "rejected: no row {pos}").map_err(io_err)?;
                return Ok(());
            }
        },
        OpLine::Modify { pos, attr, token } | OpLine::Resolve { pos, attr, token } => {
            let Some(row) = resolve_row(writer, *pos) else {
                writeln!(out, "rejected: no row {pos}").map_err(io_err)?;
                return Ok(());
            };
            let attr = match resolve_attr(writer, attr) {
                Ok(a) => a,
                Err(e) => {
                    writeln!(out, "rejected: {e}").map_err(io_err)?;
                    return Ok(());
                }
            };
            if matches!(op, OpLine::Modify { .. }) {
                ServeOp::Modify {
                    row,
                    attr,
                    token: token.clone(),
                }
            } else {
                ServeOp::ResolveNull {
                    row,
                    attr,
                    token: token.clone(),
                }
            }
        }
        OpLine::Compact => ServeOp::Compact,
    };
    match writer
        .stage(&serve_op)
        .map_err(|e| CliError::runtime(format!("journal failure, aborting: {e}")))?
    {
        Staged::Applied(_) | Staged::Compacted(_) => {
            writeln!(
                out,
                "staged ({} op(s) await commit)",
                writer.ops_applied() - writer.published_log().last().map_or(0, |s| s.ops_applied)
            )
            .map_err(io_err)?;
        }
        Staged::Rejected(e) => writeln!(out, "rejected: {e}").map_err(io_err)?,
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::runtime(format!("i/o error: {e}"))
}

/// One interactive serving session over any line stream: mutations
/// stage, `commit` publishes, reads (`table`, `select`, `epoch`,
/// `metrics`) see only the published snapshot (except `metrics`, which
/// renders the live recorder). Returns `true` if the client asked the
/// whole server to shut down (`shutdown`); `quit` or EOF ends just this
/// session, publishing any pending staged work first (durable before
/// the prompt closes).
fn serve_session<S: Storage, R: BufRead, W: IoWrite>(
    writer: &mut serve::Writer<S>,
    reader: &serve::Reader,
    rec: &Recorder,
    input: R,
    out: &mut W,
) -> Result<bool, CliError> {
    let hello = reader.snapshot();
    writeln!(
        out,
        "serving epoch {} ({} row(s)); verbs: insert delete modify resolve compact \
         commit table select semantics epoch metrics quit shutdown",
        hello.seq(),
        hello.db().instance().len()
    )
    .map_err(io_err)?;
    let mut shutdown = false;
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next().unwrap_or_default() {
            "quit" => break,
            "shutdown" => {
                shutdown = true;
                break;
            }
            "commit" => {
                let epoch = writer
                    .publish()
                    .map_err(|e| CliError::runtime(format!("publish failed: {e}")))?;
                writeln!(
                    out,
                    "published epoch {} ({} op(s) applied, durable)",
                    epoch.seq(),
                    epoch.ops_applied()
                )
                .map_err(io_err)?;
            }
            "epoch" => {
                let epoch = reader.snapshot();
                writeln!(
                    out,
                    "epoch {} ({} op(s) applied, fingerprint {:016x})",
                    epoch.seq(),
                    epoch.ops_applied(),
                    epoch.fingerprint()
                )
                .map_err(io_err)?;
            }
            "table" => {
                let epoch = reader.snapshot();
                writeln!(out, "{}", epoch.db().instance().render(true)).map_err(io_err)?;
            }
            "semantics" => {
                let epoch = reader.snapshot();
                let db = epoch.db();
                let cmp = semantics::compare(db.instance(), db.fds());
                write!(
                    out,
                    "{}",
                    semantics::render_comparison(&cmp, db.fds(), db.instance())
                )
                .map_err(io_err)?;
            }
            "metrics" => {
                let snap = rec.snapshot();
                match (words.next(), words.next()) {
                    (None, _) => write!(out, "{}", snap.render_text()).map_err(io_err)?,
                    (Some("json"), None) => {
                        writeln!(out, "{}", snap.render_json()).map_err(io_err)?
                    }
                    _ => writeln!(out, "error: usage is `metrics [json]`").map_err(io_err)?,
                }
            }
            "select" => {
                let (Some(attr), Some(value), None) = (words.next(), words.next(), words.next())
                else {
                    writeln!(out, "error: usage is `select <attr> <value>`").map_err(io_err)?;
                    continue;
                };
                let epoch = reader.snapshot();
                match Query::eq_text(epoch.db().instance(), attr, value) {
                    Err(e) => writeln!(out, "error: {e}").map_err(io_err)?,
                    Ok(query) => {
                        let selection = epoch
                            .select_recorded(&query, &fdi_exec::Executor::from_env(), rec)
                            .map_err(|e| CliError::runtime(e.to_string()))?;
                        let position = |row: RowId| {
                            epoch
                                .db()
                                .instance()
                                .row_ids()
                                .position(|id| id == row)
                                .map_or_else(|| "?".to_string(), |p| (p + 1).to_string())
                        };
                        let render = |rows: &[RowId]| {
                            rows.iter()
                                .map(|&r| position(r))
                                .collect::<Vec<_>>()
                                .join(" ")
                        };
                        writeln!(
                            out,
                            "sure: [{}]  maybe: [{}]  (epoch {})",
                            render(&selection.sure),
                            render(&selection.maybe),
                            epoch.seq()
                        )
                        .map_err(io_err)?;
                    }
                }
            }
            _ => match parse_ops(line) {
                Err(e) => writeln!(out, "error: {e}").map_err(io_err)?,
                Ok(ops) => {
                    for op in &ops {
                        stage_op_line(writer, op, out)?;
                    }
                }
            },
        }
    }
    // durable before the prompt closes: publish whatever is staged
    let epoch = writer
        .publish()
        .map_err(|e| CliError::runtime(format!("final publish failed: {e}")))?;
    writeln!(
        out,
        "session closed at epoch {} ({} op(s) durable)",
        epoch.seq(),
        epoch.ops_applied()
    )
    .map_err(io_err)?;
    Ok(shutdown)
}

/// Serves TCP clients one at a time over the shared writer (readers of
/// the published epoch are cheap; the single writer is the serializing
/// resource). A client's `shutdown` stops the listener. Per-client
/// failures — a refused accept, a connection dropped mid-session — are
/// reported and survived: the server stays up for the next connection,
/// and any work the dropped client staged-but-did-not-commit simply
/// rides along until the next publish. Only non-I/O runtime failures
/// (journal corruption, publish errors) stop the server.
fn serve_tcp<S: Storage>(
    listener: TcpListener,
    writer: &mut serve::Writer<S>,
    reader: &serve::Reader,
    rec: &Recorder,
) -> Result<(), CliError> {
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(stream) => stream,
            Err(e) => {
                println!("accept failed ({e}); still listening");
                continue;
            }
        };
        let input = match stream.try_clone() {
            Ok(half) => BufReader::new(half),
            Err(e) => {
                println!("client dropped at connect ({e}); still listening");
                continue;
            }
        };
        let mut out = stream;
        match serve_session(writer, reader, rec, input, &mut out) {
            Ok(true) => break,
            Ok(false) => {}
            Err(CliError::Runtime(msg)) if msg.starts_with("i/o error:") => {
                println!("client dropped mid-session ({msg}); still listening");
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn run_serve(args: &[String]) -> Result<(), CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut max_batch = 64usize;
    let mut tcp: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batch" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::parse("--batch needs a count"))?;
                max_batch = value
                    .parse()
                    .map_err(|_| CliError::parse(format!("bad --batch count {value:?}")))?;
            }
            "--tcp" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::parse("--tcp needs an address"))?;
                tcp = Some(value.clone());
            }
            other => positional.push(other),
        }
    }
    let (journal_path, desc_path) = match positional.as_slice() {
        [journal] => (*journal, None),
        [journal, desc] => (*journal, Some(*desc)),
        _ => return Err(CliError::parse(USAGE)),
    };
    let (mut writer, mut reader) = open_writer(journal_path, desc_path, max_batch)?;
    // One live recorder for the whole serving process: the writer's
    // publish/journal metrics, the reader's snapshot metrics, and the
    // query-path metrics of every `select` all land in the same sink,
    // which the `metrics` command renders.
    let rec = Recorder::enabled();
    writer.set_recorder(rec.clone());
    reader.set_recorder(rec.clone());
    match tcp {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            serve_session(&mut writer, &reader, &rec, stdin.lock(), &mut stdout)?;
            Ok(())
        }
        Some(addr) => {
            let listener = TcpListener::bind(&addr)
                .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?;
            let local = listener.local_addr().map_err(io_err)?;
            println!("listening on {local}");
            serve_tcp(listener, &mut writer, &reader, &rec)
        }
    }
}

/// The `semantics` verb: differential TEST-FDs across every registered
/// null-comparison convention. The path is tried as a description file
/// first; if it does not parse as one, it is recovered as an op
/// journal, so the verb works on both input kinds.
fn run_semantics(path: &str) -> Result<(), CliError> {
    let (instance, fds) = match std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse_description(&text).ok())
    {
        Some(desc) => (desc.instance, desc.fds),
        None => {
            let (db, _journal) = open_journal(path, None)?;
            (db.instance().clone(), db.fds().clone())
        }
    };
    let cmp = semantics::compare(&instance, &fds);
    print!("{}", semantics::render_comparison(&cmp, &fds, &instance));
    Ok(())
}

const USAGE: &str = "usage:\n  \
    fdi <report|strong|weak|chase|chase-extended|keys|normalize|exhaustion> <file>\n  \
    fdi semantics <file-or-journal>\n  \
    fdi journal-apply <journal> <ops-file> [desc-file]\n  \
    fdi recover <journal>\n  \
    fdi checkpoint <journal>\n  \
    fdi stats <journal> [--json]\n  \
    fdi serve <journal> [desc-file] [--batch N] [--tcp ADDR]";

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let command = args.first().map(String::as_str).unwrap_or_default();
    match (command, args.len()) {
        ("journal-apply", 3) => run_journal_apply(&args[1], &args[2], None),
        ("journal-apply", 4) => run_journal_apply(&args[1], &args[2], Some(&args[3])),
        ("recover", 2) => run_recover(&args[1]),
        ("checkpoint", 2) => run_checkpoint(&args[1]),
        ("stats", 2) => run_stats(&args[1], false),
        ("stats", 3) if args[2] == "--json" => run_stats(&args[1], true),
        ("semantics", 2) => run_semantics(&args[1]),
        ("serve", n) if n >= 2 => run_serve(&args[1..]),
        ("journal-apply" | "recover" | "checkpoint" | "stats" | "semantics" | "serve", _) => {
            Err(CliError::parse(USAGE))
        }
        (_, 2) => {
            let text = std::fs::read_to_string(&args[1])
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", args[1])))?;
            let desc = parse_description(&text)
                .map_err(|e| CliError::Parse(format!("parse error: {e}")))?;
            run(command, &desc)
        }
        _ => Err(CliError::parse(USAGE)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
        Err(CliError::Parse(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
%schema
relation Staff
attr emp ada bob cyd
attr dept sales eng
attr mgr mia noa

%fds
emp -> dept
dept -> mgr

%instance
ada sales mia
bob -     mia
cyd eng   -
";

    #[test]
    fn parses_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        assert_eq!(d.schema.arity(), 3);
        assert_eq!(d.fds.len(), 2);
        assert_eq!(d.instance.len(), 3);
        assert_eq!(d.instance.null_count(), 2);
    }

    #[test]
    fn commands_run_on_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        for cmd in [
            "report",
            "strong",
            "weak",
            "chase",
            "chase-extended",
            "keys",
            "normalize",
            "exhaustion",
        ] {
            run(cmd, &d).unwrap_or_else(|e| panic!("command {cmd}: {e:?}"));
        }
        assert!(matches!(run("bogus", &d), Err(CliError::Parse(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(
            parse_description("attr A a1").is_err(),
            "content before section"
        );
        assert!(parse_description("%schema\nrelation").is_err());
        assert!(parse_description("%schema\nfoo A").is_err());
        assert!(
            parse_description("%schema\nrelation R").is_err(),
            "no attrs"
        );
        let bad_fd = "%schema\nattr A a1\n%fds\nA -> ZZ\n%instance\n";
        assert!(parse_description(bad_fd).is_err());
    }

    #[test]
    fn unbounded_attrs_via_empty_value_list() {
        let text = "%schema\nattr name\nattr status m s\n%fds\n%instance\nJohn m\n";
        let d = parse_description(text).expect("parse");
        assert_eq!(d.instance.len(), 1);
    }

    #[test]
    fn ops_files_parse_and_reject_garbage() {
        let ops = parse_ops(
            "# comment\ninsert ada sales mia\ndelete 2\nmodify 1 dept eng\n\
             resolve 3 mgr noa\ncompact\n",
        )
        .expect("parse");
        assert_eq!(ops.len(), 5);
        assert_eq!(
            ops[0],
            OpLine::Insert(vec!["ada".into(), "sales".into(), "mia".into()])
        );
        assert_eq!(ops[1], OpLine::Delete(2));
        assert_eq!(ops[4], OpLine::Compact);
        for bad in [
            "insert",
            "delete",
            "delete zero",
            "delete 0",
            "delete 1 extra",
            "modify 1 dept",
            "resolve 1",
            "teleport 3",
            "compact now",
        ] {
            assert!(parse_ops(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn usage_and_unknown_commands_are_parse_errors() {
        assert!(matches!(dispatch(&[]), Err(CliError::Parse(_))));
        assert!(matches!(
            dispatch(&["report".to_string()]),
            Err(CliError::Parse(_))
        ));
        assert!(matches!(
            dispatch(&["journal-apply".to_string(), "x".to_string()]),
            Err(CliError::Parse(_))
        ));
        // a missing description file is a runtime error, not a panic
        assert!(matches!(
            dispatch(&["report".to_string(), "/no/such/file".to_string()]),
            Err(CliError::Runtime(_))
        ));
    }

    /// End-to-end journal verbs over a real temp file: create + apply,
    /// reopen + apply more, checkpoint, recover.
    #[test]
    fn journal_verbs_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("fdi-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let desc = dir.join("db.fdi");
        let ops1 = dir.join("ops1.txt");
        let ops2 = dir.join("ops2.txt");
        let journal = dir.join("staff.journal");
        std::fs::write(&desc, SAMPLE).unwrap();
        // "delete 4" targets the just-inserted 4th display row; all
        // three ops keep the instance weakly satisfiable → accepted
        std::fs::write(&ops1, "insert cyd eng noa\ndelete 4\nmodify 1 mgr noa\n").unwrap();
        // resolve bob's dept to eng (sales would clash ada/noa vs mia);
        // "delete 99" is an out-of-range rejection exercised on purpose
        std::fs::write(&ops2, "resolve 2 dept eng\ncompact\ndelete 99\n").unwrap();
        let jpath = journal.to_str().unwrap().to_string();

        run_journal_apply(&jpath, ops1.to_str().unwrap(), Some(desc.to_str().unwrap()))
            .expect("create + first batch");
        run_journal_apply(&jpath, ops2.to_str().unwrap(), None).expect("reopen + second batch");

        let storage = FileStorage::open(&journal).unwrap();
        let recovered = Journal::recover(storage).expect("journal recovers");
        assert!(recovered.torn.is_none());
        assert!(
            recovered.ops.len() >= 4,
            "accepted ops from both batches are durable: {:?}",
            recovered.ops
        );
        assert_eq!(recovered.db.instance().len(), 3);

        run_checkpoint(&jpath).expect("checkpoint");
        let after = Journal::recover(FileStorage::open(&journal).unwrap()).unwrap();
        assert_eq!(after.ops.len(), 0, "checkpoint cleared the replay log");
        assert_eq!(
            after.db.instance().render(true),
            recovered.db.instance().render(true)
        );

        run_recover(&jpath).expect("recover verb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_serving_pair() -> (
        serve::Writer<fd_incomplete::store::MemStorage>,
        serve::Reader,
    ) {
        let d = parse_description(SAMPLE).expect("parse");
        let db = Database::new(d.instance, d.fds, Policy::default()).expect("valid base");
        serve::Writer::create(
            db,
            fd_incomplete::store::MemStorage::new(),
            ServeConfig {
                max_batch: 4,
                checkpoint_every: None,
            },
            fdi_exec::Executor::with_threads(1),
        )
        .expect("create serving pair")
    }

    /// A scripted in-memory serving session: staged ops are invisible
    /// to `table` until `commit`, rejections are reported inline, and
    /// the final publish makes pending work durable.
    #[test]
    fn serve_session_stages_commits_and_reads_snapshots() {
        let (mut writer, reader) = sample_serving_pair();
        let script = "insert cyd eng noa\n\
                      table\n\
                      commit\n\
                      table\n\
                      select dept eng\n\
                      epoch\n\
                      delete 99\n\
                      insert ada eng mia\n\
                      bogus-verb\n\
                      quit\n";
        let mut out = Vec::new();
        let shutdown = serve_session(
            &mut writer,
            &reader,
            &Recorder::noop(),
            std::io::Cursor::new(script),
            &mut out,
        )
        .expect("session runs");
        assert!(!shutdown, "quit must not request server shutdown");
        let text = String::from_utf8(out).unwrap();

        assert!(text.contains("staged (1 op(s) await commit)"), "{text}");
        assert!(
            text.contains("published epoch 1 (1 op(s) applied, durable)"),
            "{text}"
        );
        // the first `table` (pre-commit) must not show the staged row,
        // the second (post-commit) must
        let first_table = text.find("emp").expect("rendered table header");
        let pre = &text[first_table..text.find("published").unwrap()];
        assert_eq!(
            pre.matches("cyd").count(),
            1,
            "staged insert leaked to a reader: {text}"
        );
        let post = &text[text.find("published").unwrap()..];
        assert_eq!(
            post.matches("cyd").count(),
            2,
            "committed insert must be visible: {text}"
        );
        assert!(
            text.contains("sure: [3 4]"),
            "both eng rows answer `dept = eng`: {text}"
        );
        assert!(
            text.contains("epoch 1 (1 op(s) applied, fingerprint"),
            "{text}"
        );
        assert!(text.contains("rejected: no row 99"), "{text}");
        // `ada eng mia` violates emp -> dept against the committed base
        assert!(text.contains("rejected:"), "{text}");
        assert!(
            text.contains("error:"),
            "bogus verb must be reported: {text}"
        );
        assert!(text.contains("session closed at epoch 2"), "{text}");

        // the rejected insert staged nothing; the violating insert was
        // reported — final durable state has exactly the 4 rows
        assert_eq!(writer.db().instance().len(), 4);
        assert_eq!(reader.snapshot().seq(), 2);
    }

    /// The TCP front end over a real socket: two clients in turn, the
    /// second sees the first's committed work; `shutdown` stops the
    /// listener and the final state is durable in the journal.
    #[test]
    fn serve_tcp_round_trips_over_a_socket() {
        use std::io::{Read as _, Write as _};

        let (mut writer, reader) = sample_serving_pair();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_tcp(listener, &mut writer, &reader, &Recorder::noop()).expect("server runs");
            writer
        });

        let talk = |script: &str| -> String {
            let mut conn = std::net::TcpStream::connect(addr).expect("connect");
            conn.write_all(script.as_bytes()).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        };

        let first = talk("insert cyd eng noa\ncommit\nquit\n");
        assert!(first.contains("published epoch 1"), "{first}");
        let second = talk("table\nshutdown\n");
        assert_eq!(
            second.matches("cyd").count(),
            2,
            "second client must see committed work: {second}"
        );

        let writer = server.join().expect("server thread");
        assert_eq!(writer.db().instance().len(), 4);
        // every session published on close: 1 commit + 2 session closes
        assert_eq!(writer.seq(), 3);
    }

    /// Pulls `<name> <value>` out of an exposition rendering, where
    /// `name` includes the label set (e.g. `fdi_ops_applied{det="true"}`).
    fn metric_value(text: &str, name: &str) -> u64 {
        text.lines()
            .find_map(|line| {
                line.strip_prefix(name)
                    .and_then(|rest| rest.trim().parse().ok())
            })
            .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
    }

    /// The acceptance path for the observability layer: a serving
    /// session with a live recorder answers `metrics` with exposition
    /// output covering the epoch gauges, publish counters, journal sync
    /// counters, and plan-cache/memo query traffic — and `metrics json`
    /// with the JSON form.
    #[test]
    fn serve_session_metrics_exposes_live_counters() {
        let (mut writer, mut reader) = sample_serving_pair();
        let rec = Recorder::enabled();
        writer.set_recorder(rec.clone());
        reader.set_recorder(rec.clone());
        let script = "insert cyd eng noa\n\
                      commit\n\
                      select dept eng\n\
                      select dept eng\n\
                      metrics\n\
                      metrics json\n\
                      quit\n";
        let mut out = Vec::new();
        serve_session(
            &mut writer,
            &reader,
            &rec,
            std::io::Cursor::new(script),
            &mut out,
        )
        .expect("session runs");
        let text = String::from_utf8(out).unwrap();

        // epoch gauges + publish counter reflect the one explicit commit
        assert_eq!(metric_value(&text, "fdi_epoch_seq{det=\"true\"}"), 1);
        assert_eq!(metric_value(&text, "fdi_epochs_published{det=\"true\"}"), 1);
        assert_eq!(metric_value(&text, "fdi_ops_applied{det=\"true\"}"), 1);
        // the publish group-committed and synced the journal
        assert!(metric_value(&text, "fdi_journal_syncs{det=\"true\"}") >= 1);
        assert!(metric_value(&text, "fdi_journal_ops_committed{det=\"true\"}") >= 1);
        // two identical selects: one compile (miss), one plan-cache hit
        assert_eq!(metric_value(&text, "fdi_query_compiles{det=\"false\"}"), 1);
        assert_eq!(
            metric_value(&text, "fdi_plan_cache_misses{det=\"false\"}"),
            1
        );
        assert_eq!(metric_value(&text, "fdi_plan_cache_hits{det=\"false\"}"), 1);
        // bob's null dept consulted the NEC-signature memo; the
        // null-free rows took the classical fast path
        assert!(metric_value(&text, "fdi_memo_misses{det=\"false\"}") >= 1);
        assert!(metric_value(&text, "fdi_classical_rows{det=\"false\"}") >= 1);
        assert!(text.contains("fdi_memo_hits{det=\"false\"}"), "{text}");
        // the session reader records its snapshot traffic
        assert!(metric_value(&text, "fdi_snapshot_reads{det=\"false\"}") >= 1);
        // publish latency histogram has one observation
        assert_eq!(
            metric_value(&text, "fdi_publish_nanos_count{det=\"false\"}"),
            1
        );
        // JSON form rides the same snapshot
        assert!(text.contains("\"counters\":{"), "{text}");
        assert!(text.contains("\"epochs_published\":1"), "{text}");
        assert!(text.contains("\"epoch_published\""), "event ring: {text}");
        // the published epoch carries the frozen snapshot
        let epoch = reader.snapshot();
        assert_eq!(
            epoch
                .metrics()
                .counter(fd_incomplete::obs::Counter::EpochsPublished),
            2,
            "session-close publish froze its own publication into the epoch"
        );
    }

    /// Sequential reconnects with an abrupt client: the first client
    /// disconnects without `quit` (bare EOF) and its staged work is
    /// still published durably; two more clients reconnect in turn and
    /// see it; per-client failures never stop the listener.
    #[test]
    fn serve_tcp_survives_eof_clients_across_reconnects() {
        use std::io::{Read as _, Write as _};

        let (mut writer, reader) = sample_serving_pair();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_tcp(listener, &mut writer, &reader, &Recorder::noop()).expect("server runs");
            writer
        });

        let talk = |script: &str| -> String {
            let mut conn = std::net::TcpStream::connect(addr).expect("connect");
            conn.write_all(script.as_bytes()).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        };

        // client 1 stages an insert and vanishes without `quit`: the
        // session's close path still publishes it durably
        let first = talk("insert cyd eng noa\n");
        assert!(first.contains("staged (1 op(s) await commit)"), "{first}");
        assert!(first.contains("session closed at epoch 1"), "{first}");
        // client 2 reconnects and sees the abandoned client's work
        let second = talk("table\nquit\n");
        assert_eq!(
            second.matches("cyd").count(),
            2,
            "reconnected client must see the EOF client's published work: {second}"
        );
        // client 3 reconnects once more and stops the server
        let third = talk("epoch\nshutdown\n");
        assert!(third.contains("epoch 2 ("), "{third}");

        let writer = server.join().expect("server thread");
        assert_eq!(writer.db().instance().len(), 4);
        assert_eq!(writer.seq(), 3, "three session-close publishes");
    }

    /// The serve-session `semantics` command renders the differential
    /// comparison of the published epoch: per-convention verdicts,
    /// per-FD witnesses, and the pairwise agree/disagree matrix. On the
    /// sample, bob's null dept trips `dept -> mgr` under the strong
    /// convention only, so strong disagrees with every optimistic
    /// convention.
    #[test]
    fn serve_session_semantics_compares_conventions() {
        let (mut writer, reader) = sample_serving_pair();
        let rec = Recorder::noop();
        let mut out = Vec::new();
        serve_session(
            &mut writer,
            &reader,
            &rec,
            std::io::Cursor::new("semantics\nquit\n"),
            &mut out,
        )
        .expect("session runs");
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("semantics comparison: 3 rows, 2 fds"),
            "{text}"
        );
        assert!(text.contains("strong       violated at"), "{text}");
        assert!(text.contains("nfd          satisfied"), "{text}");
        assert!(text.contains("per-fd witnesses"), "{text}");
        assert!(
            text.contains("strong vs weak: DISAGREE (strong violated at"),
            "{text}"
        );
        assert!(text.contains("weak vs nfd: agree"), "{text}");
    }

    /// The `semantics` verb accepts both input kinds: a description
    /// file, and an op journal recovered from disk.
    #[test]
    fn semantics_verb_runs_on_descriptions_and_journals() {
        let dir = std::env::temp_dir().join(format!("fdi-cli-semantics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let desc = dir.join("db.fdi");
        std::fs::write(&desc, SAMPLE).unwrap();
        run_semantics(desc.to_str().unwrap()).expect("description input");

        let ops = dir.join("ops.txt");
        let journal = dir.join("staff.journal");
        std::fs::write(&ops, "insert cyd eng noa\n").unwrap();
        let jpath = journal.to_str().unwrap().to_string();
        run_journal_apply(&jpath, ops.to_str().unwrap(), Some(desc.to_str().unwrap()))
            .expect("create + apply");
        run_semantics(&jpath).expect("journal input");

        assert!(matches!(
            dispatch(&["semantics".to_string()]),
            Err(CliError::Parse(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The `stats` verb end to end: build a journal on disk, then
    /// recover it under a live recorder — replayed-op counts and the
    /// recorded TEST-FDs sweep show up in both renderings.
    #[test]
    fn stats_verb_reports_recovery_and_testfd_tallies() {
        let dir = std::env::temp_dir().join(format!("fdi-cli-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let desc = dir.join("db.fdi");
        let ops = dir.join("ops.txt");
        let journal = dir.join("staff.journal");
        std::fs::write(&desc, SAMPLE).unwrap();
        std::fs::write(&ops, "insert cyd eng noa\ndelete 4\nmodify 1 mgr noa\n").unwrap();
        let jpath = journal.to_str().unwrap().to_string();
        run_journal_apply(&jpath, ops.to_str().unwrap(), Some(desc.to_str().unwrap()))
            .expect("create + apply");

        let text = stats_report(&jpath, false).expect("stats");
        assert_eq!(
            metric_value(&text, "fdi_recovery_replayed_ops{det=\"true\"}"),
            3
        );
        assert_eq!(
            metric_value(&text, "fdi_journal_torn_truncations{det=\"true\"}"),
            0
        );
        // one recorded sweep per registered semantics, each tallied on
        // its labelled per-convention counter as well as the total
        assert_eq!(metric_value(&text, "fdi_testfd_checks{det=\"true\"}"), 4);
        for sem in ["strong", "null-marker", "weak", "nfd"] {
            assert_eq!(
                metric_value(
                    &text,
                    &format!("fdi_testfd_checks{{det=\"true\",semantics=\"{sem}\"}}")
                ),
                1
            );
        }
        assert!(metric_value(&text, "fdi_testfd_rows_scanned{det=\"false\"}") >= 1);

        let json = stats_report(&jpath, true).expect("stats --json");
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"recovery_replayed_ops\":3"), "{json}");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
