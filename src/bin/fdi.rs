//! `fdi` — a command-line front end for fd-incomplete.
//!
//! Reads a database description file with three `%`-marked sections —
//! schema, dependencies, instance — and answers the paper's questions
//! about it:
//!
//! ```text
//! %schema
//! relation Staff
//! attr emp  ada bob cyd
//! attr dept sales eng
//! attr mgr  mia noa
//!
//! %fds
//! emp -> dept
//! dept -> mgr
//!
//! %instance
//! ada sales mia
//! bob -     mia
//! ```
//!
//! Analysis commands take a description file:
//! `fdi <report|strong|weak|chase|chase-extended|keys|normalize|exhaustion> <file>`.
//!
//! Durability commands work a write-ahead op journal (see `fdi-store`):
//!
//! * `fdi journal-apply <journal> <ops-file> [desc-file]` — create the
//!   journal from the description (first run) or recover it, then apply
//!   the ops file: one op per line, `insert <tok>…`, `delete <row>`,
//!   `modify <row> <attr> <token>`, `resolve <row> <attr> <token>`,
//!   `compact`, with 1-based display-order row numbers. Rejected ops
//!   are reported and skipped; accepted ops are durable on exit.
//! * `fdi recover <journal>` — replay the journal and print the
//!   recovered table (truncating a torn tail; corruption is a hard
//!   error naming the byte offset).
//! * `fdi checkpoint <journal>` — recover, then atomically collapse the
//!   journal into a fresh snapshot, bounding future replay time.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, corrupt journal,
//! unsatisfiable description), `2` usage or input-parse error.

use fd_incomplete::core::interp::DEFAULT_BUDGET;
use fd_incomplete::core::update::{Database, Policy};
use fd_incomplete::core::{armstrong, chase, normalize, satisfy, subst, testfd};
use fd_incomplete::prelude::*;
use fd_incomplete::relation::rowid::RowId;
use fd_incomplete::store::{
    FileStorage, Journal, JournaledDatabase, JournaledError, Storage, SyncPolicy,
};
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure, split by exit code: parse/usage problems exit `2`,
/// runtime failures exit `1`.
#[derive(Debug)]
enum CliError {
    /// Malformed user input (description, ops file, unknown command).
    Parse(String),
    /// A well-formed request that failed (I/O, corrupt journal, …).
    Runtime(String),
}

impl CliError {
    fn parse(msg: impl Into<String>) -> CliError {
        CliError::Parse(msg.into())
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

/// A parsed database description file.
struct Description {
    schema: Arc<Schema>,
    fds: FdSet,
    instance: Instance,
}

fn parse_description(text: &str) -> Result<Description, String> {
    let mut section = String::new();
    let mut relation_name = "R".to_string();
    let mut attrs: Vec<(String, Vec<String>)> = Vec::new();
    let mut fd_lines: Vec<String> = Vec::new();
    let mut instance_lines: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('%') {
            section = name.trim().to_lowercase();
            continue;
        }
        match section.as_str() {
            "schema" => {
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("relation") => {
                        relation_name = words
                            .next()
                            .ok_or_else(|| format!("line {}: relation needs a name", lineno + 1))?
                            .to_string();
                    }
                    Some("attr") => {
                        let name = words
                            .next()
                            .ok_or_else(|| format!("line {}: attr needs a name", lineno + 1))?
                            .to_string();
                        let values: Vec<String> = words.map(str::to_string).collect();
                        attrs.push((name, values));
                    }
                    other => {
                        return Err(format!(
                            "line {}: expected 'relation' or 'attr', found {other:?}",
                            lineno + 1
                        ))
                    }
                }
            }
            "fds" => fd_lines.push(line.to_string()),
            "instance" => instance_lines.push(line.to_string()),
            other => {
                return Err(format!(
                    "line {}: content before a %section (or unknown section {other:?})",
                    lineno + 1
                ))
            }
        }
    }
    if attrs.is_empty() {
        return Err("no attributes declared in %schema".to_string());
    }
    let mut builder = Schema::builder(relation_name);
    for (name, values) in attrs {
        builder = if values.is_empty() {
            builder.attribute_unbounded(name)
        } else {
            builder.attribute(name, values)
        };
    }
    let schema = builder.build().map_err(|e| e.to_string())?;
    let fds = FdSet::parse(&schema, &fd_lines.join("\n")).map_err(|e| e.to_string())?;
    let instance =
        Instance::parse(schema.clone(), &instance_lines.join("\n")).map_err(|e| e.to_string())?;
    Ok(Description {
        schema,
        fds,
        instance,
    })
}

fn run(command: &str, desc: &Description) -> Result<(), CliError> {
    let Description {
        schema,
        fds,
        instance,
    } = desc;
    match command {
        "report" => {
            println!("{}", instance.render(true));
            let report = satisfy::report(fds, instance, DEFAULT_BUDGET)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            println!("{}", satisfy::render_report(&report, fds, instance));
        }
        "strong" => match testfd::check_strong(instance, fds) {
            Ok(()) => println!("strongly satisfied"),
            Err(v) => println!("NOT strongly satisfied: {v}"),
        },
        "weak" => {
            if chase::weakly_satisfiable_via_chase(fds, instance) {
                println!("weakly satisfiable (some completion obeys every dependency)");
            } else {
                println!("NOT weakly satisfiable (every completion violates the dependencies)");
            }
        }
        "chase" => {
            let result = chase::chase_plain(instance, fds);
            for event in &result.events {
                println!("applied: {event}");
            }
            println!("{}", result.instance.render(true));
            println!(
                "minimally incomplete after {} passes, {} events",
                result.passes,
                result.events.len()
            );
        }
        "chase-extended" => {
            // The extended closure is order-insensitive (Theorem 4a),
            // so the FDI_THREADS-sized parallel engine is safe here —
            // same canonical result at every thread count.
            let outcome = chase::extended_chase_par(instance, fds, &fdi_exec::Executor::from_env());
            println!("{}", outcome.instance.render(true));
            if outcome.has_nothing() {
                println!(
                    "{} nothing class(es): the dependencies are contradicted (Theorem 4b)",
                    outcome.nothing_classes
                );
            } else {
                println!("no nothing values: weakly satisfiable (Theorem 4b)");
            }
        }
        "keys" => {
            let all = AttrSet::first_n(schema.arity());
            for key in armstrong::candidate_keys(all, fds) {
                println!("key: {}", schema.render_attrs(key));
            }
        }
        "normalize" => {
            let all = AttrSet::first_n(schema.arity());
            println!("BCNF: {}", normalize::is_bcnf(fds, all));
            let d = normalize::bcnf_decompose(fds, all);
            for c in &d {
                println!("component: {}", schema.render_attrs(*c));
            }
            println!("lossless: {}", normalize::is_lossless(fds, all, &d));
            println!(
                "dependency preserving: {}",
                normalize::preserves_dependencies(fds, &d)
            );
        }
        "exhaustion" => {
            let sites = subst::detect_domain_exhaustion(fds, instance)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if sites.is_empty() {
                println!("no [F2] domain-exhaustion sites: the weak pipelines are exact here");
            } else {
                for s in sites {
                    // displayed row numbers are 1-based positions in the
                    // printed table, not raw slot ids
                    let pos = instance
                        .row_ids()
                        .position(|id| id == s.row)
                        .ok_or_else(|| {
                            CliError::runtime(format!(
                                "internal inconsistency: [F2] site names {} (fd #{}), \
                                 which is not a live row of this instance",
                                s.row,
                                s.fd_index + 1
                            ))
                        })?;
                    println!("[F2] at row {} under fd #{}", pos + 1, s.fd_index + 1);
                }
            }
        }
        other => {
            return Err(CliError::parse(format!(
                "unknown command {other:?} (try: report, strong, weak, chase, chase-extended, \
                 keys, normalize, exhaustion, journal-apply, recover, checkpoint)"
            )))
        }
    }
    Ok(())
}

/// One line of a `journal-apply` ops file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OpLine {
    Insert(Vec<String>),
    Delete(usize),
    Modify {
        pos: usize,
        attr: String,
        token: String,
    },
    Resolve {
        pos: usize,
        attr: String,
        token: String,
    },
    Compact,
}

/// Parses an ops file: one op per non-empty, non-`#` line. Row numbers
/// are 1-based positions in display order at application time.
fn parse_ops(text: &str) -> Result<Vec<OpLine>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or_default();
        let parse_pos = |w: Option<&str>| -> Result<usize, String> {
            let text = w.ok_or_else(|| format!("line {}: missing row number", lineno + 1))?;
            let pos: usize = text
                .parse()
                .map_err(|_| format!("line {}: bad row number {text:?}", lineno + 1))?;
            if pos == 0 {
                return Err(format!("line {}: row numbers are 1-based", lineno + 1));
            }
            Ok(pos)
        };
        let op = match verb {
            "insert" => {
                let tokens: Vec<String> = words.map(str::to_string).collect();
                if tokens.is_empty() {
                    return Err(format!("line {}: insert needs tokens", lineno + 1));
                }
                OpLine::Insert(tokens)
            }
            "delete" => {
                let pos = parse_pos(words.next())?;
                if words.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                OpLine::Delete(pos)
            }
            "modify" | "resolve" => {
                let pos = parse_pos(words.next())?;
                let attr = words
                    .next()
                    .ok_or_else(|| format!("line {}: missing attribute name", lineno + 1))?
                    .to_string();
                let token = words
                    .next()
                    .ok_or_else(|| format!("line {}: missing value token", lineno + 1))?
                    .to_string();
                if verb == "modify" {
                    OpLine::Modify { pos, attr, token }
                } else {
                    OpLine::Resolve { pos, attr, token }
                }
            }
            "compact" => {
                if words.next().is_some() {
                    return Err(format!("line {}: trailing tokens", lineno + 1));
                }
                OpLine::Compact
            }
            other => {
                return Err(format!(
                    "line {}: unknown op {other:?} (insert, delete, modify, resolve, compact)",
                    lineno + 1
                ))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Opens the journal at `path`: recovers it if it holds bytes,
/// otherwise creates it from the description file (required on first
/// use). Reports what recovery did.
fn open_journal(
    path: &str,
    desc_path: Option<&str>,
) -> Result<(Database, Journal<FileStorage>), CliError> {
    let storage = FileStorage::open(path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {path}: {e}")))?;
    if storage.is_empty() {
        let desc_path = desc_path.ok_or_else(|| {
            CliError::parse(format!(
                "journal {path} is empty: a description file is required to create it"
            ))
        })?;
        let text = std::fs::read_to_string(desc_path)
            .map_err(|e| CliError::runtime(format!("cannot read {desc_path}: {e}")))?;
        let desc = parse_description(&text).map_err(CliError::Parse)?;
        let db = Database::new(desc.instance, desc.fds, Policy::default()).map_err(|e| {
            CliError::runtime(format!("description is not a valid starting database: {e}"))
        })?;
        let journal = Journal::create(storage, &db)
            .map_err(|e| CliError::runtime(format!("cannot create journal {path}: {e}")))?;
        println!("created journal {path} from {desc_path}");
        Ok((db, journal))
    } else {
        let recovered = Journal::recover(storage)
            .map_err(|e| CliError::runtime(format!("cannot recover journal {path}: {e}")))?;
        if let Some(torn) = recovered.torn {
            println!(
                "truncated a torn tail at byte {} ({} bytes dropped)",
                torn.offset, torn.dropped
            );
        }
        println!("recovered {path}: {} op(s) replayed", recovered.ops.len());
        Ok((recovered.db, recovered.journal))
    }
}

/// The 1-based display-order row → RowId mapping of the live instance.
fn row_at(db: &Database, pos: usize) -> Option<RowId> {
    db.instance().row_ids().nth(pos - 1)
}

/// Applies parsed ops to a journaled database. Database rejections are
/// reported and skipped (the journal records accepted history only);
/// journal failures abort.
fn apply_ops(
    jdb: &mut JournaledDatabase<FileStorage>,
    ops: &[OpLine],
) -> Result<(usize, usize), CliError> {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut reject = |line: usize, msg: String| {
        println!("op {line}: rejected: {msg}");
        rejected += 1;
    };
    for (i, op) in ops.iter().enumerate() {
        let line = i + 1;
        let attr_of = |jdb: &JournaledDatabase<FileStorage>, name: &str| {
            jdb.db().instance().schema().attr_id(name)
        };
        let outcome = match op {
            OpLine::Insert(tokens) => {
                let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
                jdb.insert(&refs).map(|_| ())
            }
            OpLine::Delete(pos) => match row_at(jdb.db(), *pos) {
                Some(row) => jdb.delete(row).map(|_| ()),
                None => {
                    reject(line, format!("no row {pos}"));
                    continue;
                }
            },
            OpLine::Modify { pos, attr, token } | OpLine::Resolve { pos, attr, token } => {
                let row = match row_at(jdb.db(), *pos) {
                    Some(row) => row,
                    None => {
                        reject(line, format!("no row {pos}"));
                        continue;
                    }
                };
                let attr = match attr_of(jdb, attr) {
                    Ok(a) => a,
                    Err(e) => {
                        reject(line, e.to_string());
                        continue;
                    }
                };
                if matches!(op, OpLine::Modify { .. }) {
                    jdb.modify(row, attr, token).map(|_| ())
                } else {
                    jdb.resolve_null(row, attr, token).map(|_| ())
                }
            }
            OpLine::Compact => jdb.compact().map(|_| ()),
        };
        match outcome {
            Ok(()) => accepted += 1,
            Err(JournaledError::Update(e)) => reject(line, e.to_string()),
            Err(e) => {
                return Err(CliError::runtime(format!(
                    "op {line}: journal failure, aborting: {e}"
                )))
            }
        }
    }
    Ok((accepted, rejected))
}

fn run_journal_apply(
    journal_path: &str,
    ops_path: &str,
    desc_path: Option<&str>,
) -> Result<(), CliError> {
    let ops_text = std::fs::read_to_string(ops_path)
        .map_err(|e| CliError::runtime(format!("cannot read {ops_path}: {e}")))?;
    let ops = parse_ops(&ops_text).map_err(CliError::Parse)?;
    let (db, journal) = open_journal(journal_path, desc_path)?;
    let mut jdb = JournaledDatabase::resume(db, journal, SyncPolicy::EveryOp);
    let (accepted, rejected) = apply_ops(&mut jdb, &ops)?;
    println!("{}", jdb.db().instance().render(true));
    println!("{accepted} op(s) applied and durable, {rejected} rejected");
    Ok(())
}

fn run_recover(journal_path: &str) -> Result<(), CliError> {
    let storage = FileStorage::open(journal_path)
        .map_err(|e| CliError::runtime(format!("cannot open journal {journal_path}: {e}")))?;
    let recovered = Journal::recover(storage)
        .map_err(|e| CliError::runtime(format!("cannot recover journal {journal_path}: {e}")))?;
    println!("{}", recovered.db.instance().render(true));
    match recovered.torn {
        Some(torn) => println!(
            "recovered {} op(s); truncated a torn tail at byte {} ({} bytes dropped)",
            recovered.ops.len(),
            torn.offset,
            torn.dropped
        ),
        None => println!("recovered {} op(s); journal is clean", recovered.ops.len()),
    }
    Ok(())
}

fn run_checkpoint(journal_path: &str) -> Result<(), CliError> {
    let (db, mut journal) = open_journal(journal_path, None)?;
    journal
        .checkpoint(&db)
        .map_err(|e| CliError::runtime(format!("checkpoint failed (journal unchanged): {e}")))?;
    println!(
        "checkpointed {journal_path}: {} live row(s) snapshotted, replay log cleared",
        db.instance().len()
    );
    Ok(())
}

const USAGE: &str = "usage:\n  \
    fdi <report|strong|weak|chase|chase-extended|keys|normalize|exhaustion> <file>\n  \
    fdi journal-apply <journal> <ops-file> [desc-file]\n  \
    fdi recover <journal>\n  \
    fdi checkpoint <journal>";

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let command = args.first().map(String::as_str).unwrap_or_default();
    match (command, args.len()) {
        ("journal-apply", 3) => run_journal_apply(&args[1], &args[2], None),
        ("journal-apply", 4) => run_journal_apply(&args[1], &args[2], Some(&args[3])),
        ("recover", 2) => run_recover(&args[1]),
        ("checkpoint", 2) => run_checkpoint(&args[1]),
        ("journal-apply" | "recover" | "checkpoint", _) => Err(CliError::parse(USAGE)),
        (_, 2) => {
            let text = std::fs::read_to_string(&args[1])
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", args[1])))?;
            let desc = parse_description(&text)
                .map_err(|e| CliError::Parse(format!("parse error: {e}")))?;
            run(command, &desc)
        }
        _ => Err(CliError::parse(USAGE)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
        Err(CliError::Parse(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
%schema
relation Staff
attr emp ada bob cyd
attr dept sales eng
attr mgr mia noa

%fds
emp -> dept
dept -> mgr

%instance
ada sales mia
bob -     mia
cyd eng   -
";

    #[test]
    fn parses_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        assert_eq!(d.schema.arity(), 3);
        assert_eq!(d.fds.len(), 2);
        assert_eq!(d.instance.len(), 3);
        assert_eq!(d.instance.null_count(), 2);
    }

    #[test]
    fn commands_run_on_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        for cmd in [
            "report",
            "strong",
            "weak",
            "chase",
            "chase-extended",
            "keys",
            "normalize",
            "exhaustion",
        ] {
            run(cmd, &d).unwrap_or_else(|e| panic!("command {cmd}: {e:?}"));
        }
        assert!(matches!(run("bogus", &d), Err(CliError::Parse(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(
            parse_description("attr A a1").is_err(),
            "content before section"
        );
        assert!(parse_description("%schema\nrelation").is_err());
        assert!(parse_description("%schema\nfoo A").is_err());
        assert!(
            parse_description("%schema\nrelation R").is_err(),
            "no attrs"
        );
        let bad_fd = "%schema\nattr A a1\n%fds\nA -> ZZ\n%instance\n";
        assert!(parse_description(bad_fd).is_err());
    }

    #[test]
    fn unbounded_attrs_via_empty_value_list() {
        let text = "%schema\nattr name\nattr status m s\n%fds\n%instance\nJohn m\n";
        let d = parse_description(text).expect("parse");
        assert_eq!(d.instance.len(), 1);
    }

    #[test]
    fn ops_files_parse_and_reject_garbage() {
        let ops = parse_ops(
            "# comment\ninsert ada sales mia\ndelete 2\nmodify 1 dept eng\n\
             resolve 3 mgr noa\ncompact\n",
        )
        .expect("parse");
        assert_eq!(ops.len(), 5);
        assert_eq!(
            ops[0],
            OpLine::Insert(vec!["ada".into(), "sales".into(), "mia".into()])
        );
        assert_eq!(ops[1], OpLine::Delete(2));
        assert_eq!(ops[4], OpLine::Compact);
        for bad in [
            "insert",
            "delete",
            "delete zero",
            "delete 0",
            "delete 1 extra",
            "modify 1 dept",
            "resolve 1",
            "teleport 3",
            "compact now",
        ] {
            assert!(parse_ops(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn usage_and_unknown_commands_are_parse_errors() {
        assert!(matches!(dispatch(&[]), Err(CliError::Parse(_))));
        assert!(matches!(
            dispatch(&["report".to_string()]),
            Err(CliError::Parse(_))
        ));
        assert!(matches!(
            dispatch(&["journal-apply".to_string(), "x".to_string()]),
            Err(CliError::Parse(_))
        ));
        // a missing description file is a runtime error, not a panic
        assert!(matches!(
            dispatch(&["report".to_string(), "/no/such/file".to_string()]),
            Err(CliError::Runtime(_))
        ));
    }

    /// End-to-end journal verbs over a real temp file: create + apply,
    /// reopen + apply more, checkpoint, recover.
    #[test]
    fn journal_verbs_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("fdi-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let desc = dir.join("db.fdi");
        let ops1 = dir.join("ops1.txt");
        let ops2 = dir.join("ops2.txt");
        let journal = dir.join("staff.journal");
        std::fs::write(&desc, SAMPLE).unwrap();
        // "delete 4" targets the just-inserted 4th display row; all
        // three ops keep the instance weakly satisfiable → accepted
        std::fs::write(&ops1, "insert cyd eng noa\ndelete 4\nmodify 1 mgr noa\n").unwrap();
        // resolve bob's dept to eng (sales would clash ada/noa vs mia);
        // "delete 99" is an out-of-range rejection exercised on purpose
        std::fs::write(&ops2, "resolve 2 dept eng\ncompact\ndelete 99\n").unwrap();
        let jpath = journal.to_str().unwrap().to_string();

        run_journal_apply(&jpath, ops1.to_str().unwrap(), Some(desc.to_str().unwrap()))
            .expect("create + first batch");
        run_journal_apply(&jpath, ops2.to_str().unwrap(), None).expect("reopen + second batch");

        let storage = FileStorage::open(&journal).unwrap();
        let recovered = Journal::recover(storage).expect("journal recovers");
        assert!(recovered.torn.is_none());
        assert!(
            recovered.ops.len() >= 4,
            "accepted ops from both batches are durable: {:?}",
            recovered.ops
        );
        assert_eq!(recovered.db.instance().len(), 3);

        run_checkpoint(&jpath).expect("checkpoint");
        let after = Journal::recover(FileStorage::open(&journal).unwrap()).unwrap();
        assert_eq!(after.ops.len(), 0, "checkpoint cleared the replay log");
        assert_eq!(
            after.db.instance().render(true),
            recovered.db.instance().render(true)
        );

        run_recover(&jpath).expect("recover verb");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
