//! `fdi` — a command-line front end for fd-incomplete.
//!
//! Reads a database description file with three `%`-marked sections —
//! schema, dependencies, instance — and answers the paper's questions
//! about it:
//!
//! ```text
//! %schema
//! relation Staff
//! attr emp  ada bob cyd
//! attr dept sales eng
//! attr mgr  mia noa
//!
//! %fds
//! emp -> dept
//! dept -> mgr
//!
//! %instance
//! ada sales mia
//! bob -     mia
//! ```
//!
//! Usage: `fdi <command> <file>` where command is one of
//! `report`, `strong`, `weak`, `chase`, `chase-extended`, `keys`,
//! `normalize`, `exhaustion`.

use fd_incomplete::core::interp::DEFAULT_BUDGET;
use fd_incomplete::core::{armstrong, chase, normalize, satisfy, subst, testfd};
use fd_incomplete::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

/// A parsed database description file.
struct Description {
    schema: Arc<Schema>,
    fds: FdSet,
    instance: Instance,
}

fn parse_description(text: &str) -> Result<Description, String> {
    let mut section = String::new();
    let mut relation_name = "R".to_string();
    let mut attrs: Vec<(String, Vec<String>)> = Vec::new();
    let mut fd_lines: Vec<String> = Vec::new();
    let mut instance_lines: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('%') {
            section = name.trim().to_lowercase();
            continue;
        }
        match section.as_str() {
            "schema" => {
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("relation") => {
                        relation_name = words
                            .next()
                            .ok_or_else(|| format!("line {}: relation needs a name", lineno + 1))?
                            .to_string();
                    }
                    Some("attr") => {
                        let name = words
                            .next()
                            .ok_or_else(|| format!("line {}: attr needs a name", lineno + 1))?
                            .to_string();
                        let values: Vec<String> = words.map(str::to_string).collect();
                        attrs.push((name, values));
                    }
                    other => {
                        return Err(format!(
                            "line {}: expected 'relation' or 'attr', found {other:?}",
                            lineno + 1
                        ))
                    }
                }
            }
            "fds" => fd_lines.push(line.to_string()),
            "instance" => instance_lines.push(line.to_string()),
            other => {
                return Err(format!(
                    "line {}: content before a %section (or unknown section {other:?})",
                    lineno + 1
                ))
            }
        }
    }
    if attrs.is_empty() {
        return Err("no attributes declared in %schema".to_string());
    }
    let mut builder = Schema::builder(relation_name);
    for (name, values) in attrs {
        builder = if values.is_empty() {
            builder.attribute_unbounded(name)
        } else {
            builder.attribute(name, values)
        };
    }
    let schema = builder.build().map_err(|e| e.to_string())?;
    let fds = FdSet::parse(&schema, &fd_lines.join("\n")).map_err(|e| e.to_string())?;
    let instance =
        Instance::parse(schema.clone(), &instance_lines.join("\n")).map_err(|e| e.to_string())?;
    Ok(Description {
        schema,
        fds,
        instance,
    })
}

fn run(command: &str, desc: &Description) -> Result<(), String> {
    let Description {
        schema,
        fds,
        instance,
    } = desc;
    match command {
        "report" => {
            println!("{}", instance.render(true));
            let report = satisfy::report(fds, instance, DEFAULT_BUDGET).map_err(|e| e.to_string())?;
            println!("{}", satisfy::render_report(&report, fds, instance));
        }
        "strong" => match testfd::check_strong(instance, fds) {
            Ok(()) => println!("strongly satisfied"),
            Err(v) => println!("NOT strongly satisfied: {v}"),
        },
        "weak" => {
            if chase::weakly_satisfiable_via_chase(fds, instance) {
                println!("weakly satisfiable (some completion obeys every dependency)");
            } else {
                println!("NOT weakly satisfiable (every completion violates the dependencies)");
            }
        }
        "chase" => {
            let result = chase::chase_plain(instance, fds);
            for event in &result.events {
                println!("applied: {event}");
            }
            println!("{}", result.instance.render(true));
            println!(
                "minimally incomplete after {} passes, {} events",
                result.passes,
                result.events.len()
            );
        }
        "chase-extended" => {
            // The extended closure is order-insensitive (Theorem 4a),
            // so the FDI_THREADS-sized parallel engine is safe here —
            // same canonical result at every thread count.
            let outcome =
                chase::extended_chase_par(instance, fds, &fdi_exec::Executor::from_env());
            println!("{}", outcome.instance.render(true));
            if outcome.has_nothing() {
                println!(
                    "{} nothing class(es): the dependencies are contradicted (Theorem 4b)",
                    outcome.nothing_classes
                );
            } else {
                println!("no nothing values: weakly satisfiable (Theorem 4b)");
            }
        }
        "keys" => {
            let all = AttrSet::first_n(schema.arity());
            for key in armstrong::candidate_keys(all, fds) {
                println!("key: {}", schema.render_attrs(key));
            }
        }
        "normalize" => {
            let all = AttrSet::first_n(schema.arity());
            println!("BCNF: {}", normalize::is_bcnf(fds, all));
            let d = normalize::bcnf_decompose(fds, all);
            for c in &d {
                println!("component: {}", schema.render_attrs(*c));
            }
            println!("lossless: {}", normalize::is_lossless(fds, all, &d));
            println!(
                "dependency preserving: {}",
                normalize::preserves_dependencies(fds, &d)
            );
        }
        "exhaustion" => {
            let sites = subst::detect_domain_exhaustion(fds, instance).map_err(|e| e.to_string())?;
            if sites.is_empty() {
                println!("no [F2] domain-exhaustion sites: the weak pipelines are exact here");
            } else {
                for s in sites {
                    // displayed row numbers are 1-based positions in the
                    // printed table, not raw slot ids
                    let pos = instance
                        .row_ids()
                        .position(|id| id == s.row)
                        .expect("site names a live row");
                    println!("[F2] at row {} under fd #{}", pos + 1, s.fd_index + 1);
                }
            }
        }
        other => return Err(format!("unknown command {other:?} (try: report, strong, weak, chase, chase-extended, keys, normalize, exhaustion)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!(
            "usage: fdi <report|strong|weak|chase|chase-extended|keys|normalize|exhaustion> <file>"
        );
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(&args[2]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args[2]);
            return ExitCode::FAILURE;
        }
    };
    let desc = match parse_description(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args[1], &desc) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
%schema
relation Staff
attr emp ada bob cyd
attr dept sales eng
attr mgr mia noa

%fds
emp -> dept
dept -> mgr

%instance
ada sales mia
bob -     mia
cyd eng   -
";

    #[test]
    fn parses_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        assert_eq!(d.schema.arity(), 3);
        assert_eq!(d.fds.len(), 2);
        assert_eq!(d.instance.len(), 3);
        assert_eq!(d.instance.null_count(), 2);
    }

    #[test]
    fn commands_run_on_the_sample() {
        let d = parse_description(SAMPLE).expect("parse");
        for cmd in [
            "report",
            "strong",
            "weak",
            "chase",
            "chase-extended",
            "keys",
            "normalize",
            "exhaustion",
        ] {
            run(cmd, &d).unwrap_or_else(|e| panic!("command {cmd}: {e}"));
        }
        assert!(run("bogus", &d).is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(
            parse_description("attr A a1").is_err(),
            "content before section"
        );
        assert!(parse_description("%schema\nrelation").is_err());
        assert!(parse_description("%schema\nfoo A").is_err());
        assert!(
            parse_description("%schema\nrelation R").is_err(),
            "no attrs"
        );
        let bad_fd = "%schema\nattr A a1\n%fds\nA -> ZZ\n%instance\n";
        assert!(parse_description(bad_fd).is_err());
    }

    #[test]
    fn unbounded_attrs_via_empty_value_list() {
        let text = "%schema\nattr name\nattr status m s\n%fds\n%instance\nJohn m\n";
        let d = parse_description(text).expect("parse");
        assert_eq!(d.instance.len(), 1);
    }
}
