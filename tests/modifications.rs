//! Integration tests for the §7 extensions: modification operations and
//! the weak universal relation, across crates and on generated
//! workloads.

use fd_incomplete::core::testfd::Convention;
use fd_incomplete::core::universal::{round_trip, weak_universal_holds};
use fd_incomplete::core::update::{
    insert_with_full_recheck, Database, Enforcement, Policy, UpdateError,
};
use fd_incomplete::core::{chase, normalize, testfd};
use fd_incomplete::gen::{attr_names, random_fds, satisfiable_instance, WorkloadSpec};
use fd_incomplete::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tokens(rng: &mut StdRng, attrs: usize, domain: usize, null_rate: f64) -> Vec<String> {
    let names = attr_names(attrs);
    (0..attrs)
        .map(|i| {
            if rng.gen_bool(null_rate) {
                "-".to_string()
            } else {
                format!("{}_{}", names[i], rng.gen_range(0..domain))
            }
        })
        .collect()
}

#[test]
fn incremental_inserts_agree_with_full_rechecks_across_seeds() {
    for seed in 0..8u64 {
        let spec = WorkloadSpec {
            rows: 20,
            attrs: 4,
            domain: 6,
            null_density: 0.0,
            nec_density: 0.0,
            collision_rate: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let fds = random_fds(&mut rng, spec.attrs, 3);
        let base = satisfiable_instance(&mut rng, &spec, &fds);
        let mut db = Database::new(
            base.clone(),
            fds.clone(),
            Policy {
                enforcement: Enforcement::Strong,
                propagate: false,
            },
        )
        .expect("satisfiable base");
        let mut plain = base;
        let mut accepted = 0;
        for _ in 0..40 {
            let toks = tokens(&mut rng, spec.attrs, spec.domain, 0.2);
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            let a = db.insert(&refs).is_ok();
            let b = insert_with_full_recheck(&mut plain, &fds, &refs, Convention::Strong).is_ok();
            assert_eq!(a, b, "seed {seed}, tokens {toks:?}");
            accepted += a as usize;
        }
        // the database is never left violated
        assert!(testfd::check_strong(db.instance(), &fds).is_ok());
        assert_eq!(db.instance().len(), 20 + accepted);
    }
}

#[test]
fn weak_databases_accept_everything_strong_rejects_but_stay_satisfiable() {
    for seed in 0..6u64 {
        let spec = WorkloadSpec {
            rows: 12,
            attrs: 3,
            domain: 6,
            null_density: 0.0,
            nec_density: 0.0,
            collision_rate: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(seed * 101 + 7);
        let fds = random_fds(&mut rng, spec.attrs, 2);
        let base = satisfiable_instance(&mut rng, &spec, &fds);
        let mut weak_db = Database::new(
            base.clone(),
            fds.clone(),
            Policy {
                enforcement: Enforcement::Weak,
                propagate: true,
            },
        )
        .expect("satisfiable base");
        let mut strong_db = Database::new(
            base,
            fds.clone(),
            Policy {
                enforcement: Enforcement::Strong,
                propagate: false,
            },
        )
        .expect("satisfiable base");
        for _ in 0..30 {
            let toks = tokens(&mut rng, spec.attrs, spec.domain, 0.3);
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            let strong_ok = strong_db.insert(&refs).is_ok();
            let weak_ok = weak_db.insert(&refs).is_ok();
            if strong_ok {
                assert!(
                    weak_ok,
                    "weak must accept whatever strong accepts: {toks:?}"
                );
            }
            // the weak database is weakly satisfiable at every step
            assert!(chase::weakly_satisfiable_via_chase(
                &fds,
                weak_db.instance()
            ));
        }
    }
}

#[test]
fn resolve_null_accepts_exactly_the_consistent_values() {
    // A two-value domain with a forced value: A→B, group donor has B_1.
    let schema = Schema::uniform("R", &["A", "B"], 2).unwrap();
    let fds = FdSet::parse(&schema, "A -> B").unwrap();
    let r = Instance::parse(schema, "A_0 B_1\nA_0 -").unwrap();
    // propagate=false so the null survives construction
    let db = Database::new(
        r,
        fds,
        Policy {
            enforcement: Enforcement::Weak,
            propagate: false,
        },
    )
    .unwrap();
    let target = db.instance().nth_row(1);
    let mut ok_db = db.clone();
    ok_db
        .resolve_null(target, AttrId(1), "B_1")
        .expect("the only consistent value");
    let mut bad_db = db.clone();
    let err = bad_db.resolve_null(target, AttrId(1), "B_0").unwrap_err();
    assert!(matches!(err, UpdateError::Rejected { .. }));
    // internal acquisition would have found the same value
    let chased = chase::chase_plain(db.instance(), db.fds());
    assert_eq!(
        chased.instance.value(chased.instance.nth_row(1), AttrId(1)),
        ok_db.instance().value(target, AttrId(1)),
        "§4: the substituted value is the only value a user could insert"
    );
}

#[test]
fn universal_round_trips_on_generated_workloads() {
    for seed in 0..10u64 {
        let spec = WorkloadSpec {
            rows: 14,
            attrs: 4,
            domain: 8,
            null_density: 0.2,
            nec_density: 0.0,
            collision_rate: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let fds = random_fds(&mut rng, spec.attrs, 3);
        let universal = satisfiable_instance(&mut rng, &spec, &fds);
        let all = AttrSet::first_n(spec.attrs);
        let decomposition = normalize::bcnf_decompose(&fds, all);
        let rt = round_trip(&universal, &decomposition).expect("round trip");
        assert!(
            rt.is_containing(),
            "seed {seed}: lost tuples in {rt:?} with decomposition {decomposition:?}"
        );
        assert!(weak_universal_holds(&universal, &fds, &decomposition).expect("check"));
        // chase-first never increases the reconstruction
        let chased = chase::chase_plain(&universal, &fds).instance;
        let rt2 = round_trip(&chased, &decomposition).expect("round trip");
        assert!(rt2.is_containing());
        assert!(
            rt2.reconstructed <= rt.reconstructed,
            "seed {seed}: chase-first inflated the join ({rt:?} → {rt2:?})"
        );
    }
}

#[test]
fn deletion_then_reinsertion_round_trips() {
    let spec = WorkloadSpec {
        rows: 10,
        attrs: 3,
        domain: 8,
        null_density: 0.0,
        nec_density: 0.0,
        collision_rate: 0.4,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let fds = random_fds(&mut rng, spec.attrs, 2);
    let base = satisfiable_instance(&mut rng, &spec, &fds);
    let mut db = Database::new(
        base.clone(),
        fds,
        Policy {
            enforcement: Enforcement::Strong,
            propagate: false,
        },
    )
    .unwrap();
    // removing a tuple and putting it back must always be accepted
    let victim = base.tuple(base.nth_row(4)).clone();
    let rendered: Vec<String> = victim
        .values()
        .iter()
        .map(|v| v.render(base.symbols(), false))
        .collect();
    db.delete(db.instance().nth_row(4)).expect("delete");
    let refs: Vec<&str> = rendered.iter().map(String::as_str).collect();
    db.insert(&refs)
        .expect("reinsertion of a deleted tuple is always consistent");
    assert_eq!(db.instance().len(), base.len());
}
