//! Cross-crate pipeline tests on generated workloads: the fast
//! satisfiability procedures against the brute-force ground truth, and
//! the chase engines against each other, at sizes the enumeration can
//! still certify.

use fd_incomplete::core::interp::{self};
use fd_incomplete::core::{chase, subst, testfd};
use fd_incomplete::gen::{
    plant_violation, random_fds, satisfiable_instance, workload, WorkloadSpec,
};
use fd_incomplete::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: u128 = 1 << 16;

fn certifiable(w: &fd_incomplete::gen::Workload) -> bool {
    fdi_relation::completion::CompletionSpace::for_instance(&w.instance, w.fds.attrs())
        .map(|s| s.count() <= BUDGET)
        .unwrap_or(false)
}

#[test]
fn strong_pipeline_matches_ground_truth_across_seeds() {
    let spec = WorkloadSpec {
        rows: 8,
        attrs: 4,
        domain: 8,
        null_density: 0.2,
        nec_density: 0.2,
        collision_rate: 0.4,
    };
    let mut checked = 0;
    for seed in 0..60 {
        let w = workload(seed, &spec, 3);
        if !certifiable(&w) {
            continue;
        }
        checked += 1;
        let truth = interp::strongly_satisfied_bruteforce(&w.fds, &w.instance, BUDGET).unwrap();
        assert_eq!(
            testfd::check_strong(&w.instance, &w.fds).is_ok(),
            truth,
            "seed {seed}"
        );
    }
    assert!(checked >= 20, "only {checked} seeds were certifiable");
}

#[test]
fn weak_pipelines_match_ground_truth_across_seeds() {
    let spec = WorkloadSpec {
        rows: 8,
        attrs: 4,
        domain: 8,
        null_density: 0.2,
        nec_density: 0.2,
        collision_rate: 0.4,
    };
    let mut checked = 0;
    for seed in 0..60 {
        let w = workload(seed, &spec, 3);
        if !certifiable(&w) {
            continue;
        }
        // the pipelines are exact only under the large-domain proviso
        if !subst::detect_domain_exhaustion(&w.fds, &w.instance)
            .unwrap()
            .is_empty()
        {
            continue;
        }
        checked += 1;
        let truth = interp::weakly_satisfiable_bruteforce(&w.fds, &w.instance, BUDGET).unwrap();
        assert_eq!(
            chase::weakly_satisfiable_via_chase(&w.fds, &w.instance),
            truth,
            "Theorem 4 pipeline, seed {seed}"
        );
        assert_eq!(
            testfd::check_weak(&w.instance, &w.fds).is_ok(),
            truth,
            "Theorem 3 pipeline, seed {seed}"
        );
    }
    assert!(checked >= 20, "only {checked} seeds were certifiable");
}

#[test]
fn chase_schedulers_and_orders_agree_at_scale() {
    let spec = WorkloadSpec {
        rows: 40,
        attrs: 5,
        domain: 12,
        null_density: 0.25,
        nec_density: 0.3,
        collision_rate: 0.5,
    };
    for seed in 0..12 {
        let w = workload(seed, &spec, 4);
        let fast = chase::extended_chase(&w.instance, &w.fds, Scheduler::Fast);
        let naive = chase::extended_chase(&w.instance, &w.fds, Scheduler::NaivePairs);
        assert_eq!(
            fast.instance.canonical_form(),
            naive.instance.canonical_form(),
            "seed {seed}"
        );
        // permuted FD order
        let mut order: Vec<usize> = (0..w.fds.len()).collect();
        order.reverse();
        let permuted = chase::extended_chase(&w.instance, &w.fds.permuted(&order), Scheduler::Fast);
        assert_eq!(
            fast.instance.canonical_form(),
            permuted.instance.canonical_form(),
            "seed {seed} permuted"
        );
    }
}

#[test]
fn satisfiable_workloads_pass_and_planted_violations_fail() {
    let spec = WorkloadSpec {
        rows: 30,
        attrs: 4,
        domain: 10,
        null_density: 0.15,
        nec_density: 0.0,
        collision_rate: 0.5,
    };
    for seed in 0..12 {
        let mut rng = StdRng::seed_from_u64(seed);
        let fds = random_fds(&mut rng, spec.attrs, 3);
        let clean = satisfiable_instance(&mut rng, &spec, &fds);
        assert!(
            chase::weakly_satisfiable_via_chase(&fds, &clean),
            "seed {seed}: satisfiable workload rejected"
        );
        let mut dirty = clean.clone();
        plant_violation(&mut rng, &mut dirty, &fds);
        assert!(
            testfd::check_strong(&dirty, &fds).is_err(),
            "seed {seed}: planted violation missed by the strong test"
        );
        assert!(
            !chase::weakly_satisfiable_via_chase(&fds, &dirty),
            "seed {seed}: planted constant-constant violation must kill weak satisfiability"
        );
    }
}

#[test]
fn plain_chase_reaches_fixpoints_that_extended_chase_refines() {
    let spec = WorkloadSpec {
        rows: 24,
        attrs: 4,
        domain: 10,
        null_density: 0.3,
        nec_density: 0.2,
        collision_rate: 0.5,
    };
    for seed in 0..12 {
        let w = workload(seed, &spec, 3);
        let plain = chase::chase_plain(&w.instance, &w.fds);
        assert!(chase::is_minimally_incomplete(&plain.instance, &w.fds));
        // the extended chase agrees wherever the plain chase resolved a
        // value (unless the cell was destroyed by an inconsistency)
        let extended = chase::extended_chase(&w.instance, &w.fds, Scheduler::Fast);
        let all = w.instance.schema().all_attrs();
        for row in w.instance.row_ids() {
            for attr in all.iter() {
                let p = plain.instance.value(row, attr);
                let e = extended.instance.value(row, attr);
                if p.is_const() && !e.is_nothing() && w.instance.value(row, attr).is_null() {
                    assert_eq!(p, e, "seed {seed} row {row} attr {attr}");
                }
            }
        }
    }
}

#[test]
fn report_is_consistent_with_pipelines() {
    let spec = WorkloadSpec {
        rows: 6,
        attrs: 3,
        domain: 6,
        null_density: 0.25,
        nec_density: 0.0,
        collision_rate: 0.5,
    };
    for seed in 0..20 {
        let w = workload(seed, &spec, 2);
        if !certifiable(&w) {
            continue;
        }
        let report = fd_incomplete::core::satisfy::report(&w.fds, &w.instance, BUDGET).unwrap();
        assert_eq!(
            report.strong,
            testfd::check_strong(&w.instance, &w.fds).is_ok(),
            "seed {seed}"
        );
        assert_eq!(
            report.weak,
            chase::weakly_satisfiable_via_chase(&w.fds, &w.instance),
            "seed {seed}"
        );
        // strong ⊆ weak
        if report.strong {
            assert!(report.weak, "seed {seed}: strong implies weak");
        }
    }
}
