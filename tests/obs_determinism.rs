//! The observability determinism suite — the executable form of the
//! deterministic/nondeterministic metric split documented in
//! `fdi-obs` and the facade:
//!
//! * every **deterministic-registered** metric (counters and gauges
//!   whose `deterministic()` flag is true) is bit-identical across
//!   executor thread counts (1 vs 4) and across reader counts (0 vs 3
//!   snapshot-hammering threads) on the serve-consistency workload;
//! * a [`Recorder::noop`] changes **no engine output**: the same
//!   stream served with a live recorder and with the noop default
//!   produces bit-identical publication logs, final instances, and
//!   query answers;
//! * the chase and TEST-FD deterministic tallies are invariant under
//!   the executor grid when driven through the explicit `_with` entry
//!   points.
//!
//! Nondeterministic metrics (memo traffic, rows scanned, snapshot
//! reads, every histogram) are *excluded by construction* via
//! [`MetricsSnapshot::deterministic_pairs`] — this suite is the guard
//! that the registry's split stays honest as counters are added.

use fd_incomplete::core::chase;
use fd_incomplete::core::testfd::{self, Convention};
use fd_incomplete::core::update::{Database, Enforcement, Policy};
use fd_incomplete::gen::{
    satisfiable_workload, scaling_query, update_stream, UpdateMix, UpdateOp, WorkloadSpec,
};
use fd_incomplete::obs::{Counter, MetricsSnapshot, Recorder};
use fd_incomplete::serve::{Reader, ServeConfig, ServeOp, Staged, Writer};
use fd_incomplete::store::MemStorage;
use fdi_exec::Executor;
use fdi_relation::rowid::RowId;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn spec(rows: usize) -> WorkloadSpec {
    WorkloadSpec {
        rows,
        attrs: 3,
        domain: 5,
        null_density: 0.2,
        nec_density: 0.2,
        collision_rate: 0.4,
    }
}

fn mix() -> UpdateMix {
    UpdateMix {
        resolve: 2,
        ..UpdateMix::default()
    }
}

fn base_db(seed: u64, rows: usize) -> Database {
    let w = satisfiable_workload(seed, &spec(rows), 2);
    Database::new(
        w.instance.clone(),
        w.fds.clone(),
        Policy {
            enforcement: Enforcement::Weak,
            propagate: false,
        },
    )
    .expect("satisfiable base")
}

fn resolve_op(op: &UpdateOp, live: &[RowId]) -> Option<ServeOp> {
    match op {
        UpdateOp::Insert(tokens) => Some(ServeOp::Insert(tokens.clone())),
        UpdateOp::Delete(pos) => live.get(*pos).copied().map(ServeOp::Delete),
        UpdateOp::Modify { row, attr, token } => {
            live.get(*row).copied().map(|id| ServeOp::Modify {
                row: id,
                attr: *attr,
                token: token.clone(),
            })
        }
        UpdateOp::ResolveNull { row, attr, token } => {
            live.get(*row).copied().map(|id| ServeOp::ResolveNull {
                row: id,
                attr: *attr,
                token: token.clone(),
            })
        }
    }
}

/// Stages the stream in publish-batches of `batch`, maintaining the
/// positional live-row tracker exactly like the serving concurrency
/// suite does.
fn stage_stream(
    writer: &mut Writer<MemStorage>,
    live: &mut Vec<RowId>,
    stream: &[UpdateOp],
    batch: usize,
) {
    for chunk in stream.chunks(batch) {
        for op in chunk {
            let Some(resolved) = resolve_op(op, live) else {
                continue;
            };
            match writer.stage(&resolved).expect("no faults scheduled") {
                Staged::Applied(outcome) => match (&resolved, op) {
                    (ServeOp::Insert(_), _) => live.push(outcome.row),
                    (ServeOp::Delete(_), UpdateOp::Delete(pos)) => {
                        live.remove(*pos);
                    }
                    _ => {}
                },
                Staged::Compacted(_) | Staged::Rejected(_) => {}
            }
        }
        writer.publish().expect("publish");
    }
}

/// Spawns `count` reader threads hammering snapshots (and the recorded
/// query path) until `done` — pure nondeterministic-metric traffic that
/// must leave every deterministic tally untouched.
fn spawn_readers(
    reader: &Reader,
    rec: &Recorder,
    count: usize,
    done: &Arc<AtomicBool>,
) -> Vec<thread::JoinHandle<()>> {
    (0..count)
        .map(|_| {
            let handle = reader.clone();
            let rec = rec.clone();
            let done = Arc::clone(done);
            thread::spawn(move || {
                let exec = Executor::with_threads(2);
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let epoch = handle.snapshot();
                    let q = scaling_query(epoch.db().instance());
                    let _ = epoch
                        .select_recorded(&q, &exec, &rec)
                        .expect("select on a snapshot");
                    if finished {
                        break;
                    }
                    thread::yield_now();
                }
            })
        })
        .collect()
}

/// Runs the serve-consistency workload end to end with a live recorder
/// under the given executor and reader count; returns the final
/// metrics snapshot and the publication log.
fn recorded_run(
    threads: usize,
    readers: usize,
) -> (MetricsSnapshot, Vec<fd_incomplete::serve::EpochStamp>) {
    const SEED: u64 = 0x0B5;
    let db = base_db(SEED, 6);
    let mut live: Vec<RowId> = db.instance().row_ids().collect();
    let stream = update_stream(0xFACE, &spec(6), live.len(), 48, mix());
    let (mut writer, mut reader) = Writer::create(
        db,
        MemStorage::new(),
        ServeConfig {
            max_batch: 6,
            checkpoint_every: None,
        },
        Executor::with_threads(threads),
    )
    .unwrap();
    let rec = Recorder::enabled();
    writer.set_recorder(rec.clone());
    reader.set_recorder(rec.clone());
    let done = Arc::new(AtomicBool::new(false));
    let handles = spawn_readers(&reader, &rec, readers, &done);
    stage_stream(&mut writer, &mut live, &stream, 6);
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("a reader thread panicked");
    }
    (rec.snapshot(), writer.published_log().to_vec())
}

/// The headline invariance test: the deterministic slice of the
/// registry is bit-identical across the full (threads × readers) grid,
/// while the grid genuinely varies the nondeterministic traffic.
#[test]
fn deterministic_metrics_are_bit_identical_across_threads_and_readers() {
    let mut runs: Vec<(usize, usize, MetricsSnapshot, Vec<_>)> = Vec::new();
    for threads in [1usize, 4] {
        for readers in [0usize, 3] {
            let (snap, log) = recorded_run(threads, readers);
            runs.push((threads, readers, snap, log));
        }
    }
    let reference = runs[0].2.deterministic_pairs();
    assert!(
        !reference.is_empty(),
        "the deterministic registry slice must not be empty"
    );
    assert!(
        reference
            .iter()
            .any(|(name, v)| *name == "ops_applied" && *v > 0),
        "the workload must actually drive deterministic counters: {reference:?}"
    );
    assert!(
        reference
            .iter()
            .any(|(name, v)| *name == "epochs_published" && *v > 0),
        "publishes must be tallied: {reference:?}"
    );
    assert!(
        reference
            .iter()
            .any(|(name, v)| *name == "journal_syncs" && *v > 0),
        "journal syncs must be tallied: {reference:?}"
    );
    let ref_log = &runs[0].3;
    for (threads, readers, snap, log) in &runs[1..] {
        assert_eq!(
            snap.deterministic_pairs(),
            reference,
            "a deterministic-registered metric diverged at threads={threads} readers={readers}"
        );
        assert_eq!(
            log, ref_log,
            "publication log diverged at threads={threads} readers={readers}"
        );
    }
    // The grid is only meaningful if reader traffic really moved the
    // nondeterministic side: a 3-reader run must record snapshot reads.
    let with_readers = &runs[1].2;
    assert!(
        with_readers.counter(Counter::SnapshotReads) > 0,
        "reader threads must drive the nondeterministic counters"
    );
}

/// The chase and TEST-FD deterministic tallies are executor-invariant
/// when driven through the explicit recorded entry points — including
/// the per-semantics `testfd_checks` slices, which are deterministic
/// counters like the total.
#[test]
fn chase_and_testfd_tallies_are_thread_invariant() {
    use fd_incomplete::core::semantics::SemanticsKind;
    let w = fd_incomplete::gen::large_workload(7, 400, 0.25, 0.1, 4);
    let mut snapshots = Vec::new();
    for threads in [1usize, 4] {
        let exec = Executor::with_threads(threads);
        let rec = Recorder::enabled();
        let chase_result = chase::chase_indexed_par_with(&w.instance, &w.fds, &exec, &rec);
        let strong = testfd::check_par_with(&w.instance, &w.fds, Convention::Strong, &exec, &rec);
        let weak = testfd::check_par_with(&w.instance, &w.fds, Convention::Weak, &exec, &rec);
        for kind in SemanticsKind::ALL {
            let _ = testfd::check_par_with(&w.instance, &w.fds, kind, &exec, &rec);
        }
        snapshots.push((threads, rec.snapshot(), chase_result, strong, weak));
    }
    let (_, reference, ref_chase, ref_strong, ref_weak) = &snapshots[0];
    // 2 Convention-driven checks + one sweep over all four kinds
    assert!(
        reference
            .deterministic_pairs()
            .iter()
            .any(|(name, v)| *name == "testfd_checks" && *v == 6),
        "every recorded check must land on the total"
    );
    // ... and each check also tallied its per-semantics slice: the
    // Convention values dispatch to the same counters as the kinds.
    for (name, expected) in [
        ("testfd_checks_strong", 2u64),
        ("testfd_checks_null_marker", 1),
        ("testfd_checks_weak", 2),
        ("testfd_checks_nfd", 1),
    ] {
        assert!(
            reference
                .deterministic_pairs()
                .iter()
                .any(|(n, v)| *n == name && *v == expected),
            "per-semantics slice {name} must tally {expected}"
        );
    }
    for (threads, snap, chase_result, strong, weak) in &snapshots[1..] {
        assert_eq!(
            snap.deterministic_pairs(),
            reference.deterministic_pairs(),
            "chase/testfd deterministic tallies diverged at threads={threads}"
        );
        assert_eq!(
            chase_result.instance.canonical_form(),
            ref_chase.instance.canonical_form(),
            "chase result diverged at threads={threads}"
        );
        assert_eq!(chase_result.passes, ref_chase.passes);
        assert_eq!(chase_result.events.len(), ref_chase.events.len());
        assert_eq!(strong, ref_strong);
        assert_eq!(weak, ref_weak);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Noop purity: serving the same random stream with a live recorder
    /// and with the noop default produces bit-identical publication
    /// logs, final instances, and query answers — observability is
    /// write-only with respect to engine state.
    #[test]
    fn noop_recorder_changes_no_engine_output(
        seed in 0u64..1 << 32,
        rows in 0usize..8,
        ops in 1usize..24,
        batch in 1usize..6,
    ) {
        let stream = {
            let db = base_db(seed, rows);
            let live: Vec<RowId> = db.instance().row_ids().collect();
            update_stream(seed ^ 0x0B5, &spec(rows), live.len(), ops, mix())
        };
        let mut finals = Vec::new();
        for instrumented in [false, true] {
            let db = base_db(seed, rows);
            let mut live: Vec<RowId> = db.instance().row_ids().collect();
            let (mut writer, mut reader) = Writer::create(
                db,
                MemStorage::new(),
                ServeConfig { max_batch: 4, checkpoint_every: None },
                Executor::with_threads(2),
            ).unwrap();
            let rec = if instrumented { Recorder::enabled() } else { Recorder::noop() };
            writer.set_recorder(rec.clone());
            reader.set_recorder(rec.clone());
            stage_stream(&mut writer, &mut live, &stream, batch);
            let epoch = reader.snapshot();
            let q = scaling_query(epoch.db().instance());
            let exec = Executor::with_threads(2);
            let answer = epoch.select_recorded(&q, &exec, &rec).expect("select");
            prop_assert_eq!(
                &answer,
                &epoch.select(&q, &exec).expect("select"),
                "select_recorded diverged from select on the same epoch"
            );
            finals.push((
                writer.published_log().to_vec(),
                writer.db().instance().render(true),
                answer,
            ));
        }
        let (noop_log, noop_render, noop_answer) = &finals[0];
        let (live_log, live_render, live_answer) = &finals[1];
        prop_assert_eq!(noop_log, live_log, "publication log differs under instrumentation");
        prop_assert_eq!(noop_render, live_render, "final instance differs under instrumentation");
        prop_assert_eq!(noop_answer, live_answer, "query answer differs under instrumentation");
    }
}
