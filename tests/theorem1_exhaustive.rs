//! Theorem 1, exhaustively on a small universe: over 3 attributes, every
//! implication question `F ⊨ X → Y` is answered identically by
//!
//! 1. attribute closure (Armstrong, the classical procedure),
//! 2. logical inference in System-C over all 3^n assignments (Lemma 2/4),
//! 3. strong-satisfaction search over two-tuple relations with nulls,
//!    evaluated by completion enumeration (Lemma 3/4),
//! 4. derivability in the I1–I4 proof system.

use fd_incomplete::core::{armstrong, equiv};
use fd_incomplete::logic::implication::{infers, Statement};
use fd_incomplete::prelude::*;

fn all_nonempty_sets(n: usize) -> Vec<AttrSet> {
    (1u64..(1 << n)).map(AttrSet).collect()
}

#[test]
fn exhaustive_three_attribute_universe() {
    let sets = all_nonempty_sets(3);
    // premise sets: a curated spread (the full double-exponential space
    // is out of reach; these cover chains, cycles, composites, and
    // multi-attribute determinants)
    let premise_sets: Vec<FdSet> = vec![
        FdSet::new(),
        FdSet::from_vec(vec![Fd::new(AttrSet(0b001), AttrSet(0b010))]),
        FdSet::from_vec(vec![
            Fd::new(AttrSet(0b001), AttrSet(0b010)),
            Fd::new(AttrSet(0b010), AttrSet(0b100)),
        ]),
        FdSet::from_vec(vec![
            Fd::new(AttrSet(0b001), AttrSet(0b010)),
            Fd::new(AttrSet(0b010), AttrSet(0b001)),
        ]),
        FdSet::from_vec(vec![Fd::new(AttrSet(0b011), AttrSet(0b100))]),
        FdSet::from_vec(vec![
            Fd::new(AttrSet(0b011), AttrSet(0b100)),
            Fd::new(AttrSet(0b100), AttrSet(0b001)),
        ]),
        FdSet::from_vec(vec![
            Fd::new(AttrSet(0b001), AttrSet(0b110)),
            Fd::new(AttrSet(0b110), AttrSet(0b001)),
        ]),
    ];
    let mut implications = 0;
    let mut non_implications = 0;
    for premises in &premise_sets {
        let statements: Vec<Statement> = premises
            .iter()
            .map(|f| equiv::fd_to_statement(*f))
            .collect();
        for lhs in &sets {
            for rhs in &sets {
                let goal = Fd::new(*lhs, *rhs);
                let via_closure = armstrong::implies(premises, goal);
                let via_logic = infers(&statements, equiv::fd_to_statement(goal));
                let via_worlds = equiv::implies_via_two_tuple_worlds(premises, goal).unwrap();
                let via_derivation = armstrong::derive(premises, goal).is_some();
                assert_eq!(via_closure, via_logic, "{premises:?} ⊨ {goal}");
                assert_eq!(via_closure, via_worlds, "{premises:?} ⊨ {goal}");
                assert_eq!(via_closure, via_derivation, "{premises:?} ⊢ {goal}");
                if via_closure {
                    implications += 1;
                } else {
                    non_implications += 1;
                }
            }
        }
    }
    // sanity: the universe is not degenerate
    assert!(implications > 50, "{implications}");
    assert!(non_implications > 50, "{non_implications}");
}

#[test]
fn derivations_verify_end_to_end() {
    let premises = FdSet::from_vec(vec![
        Fd::new(AttrSet(0b0001), AttrSet(0b0010)),
        Fd::new(AttrSet(0b0110), AttrSet(0b1000)),
    ]);
    let hypotheses: Vec<Statement> = premises
        .iter()
        .map(|f| equiv::fd_to_statement(*f))
        .collect();
    for lhs in all_nonempty_sets(4) {
        for rhs in all_nonempty_sets(4) {
            let goal = Fd::new(lhs, rhs);
            if let Some(d) = armstrong::derive(&premises, goal) {
                assert!(d.verify(&hypotheses).is_ok(), "tampered proof for {goal}");
                assert_eq!(equiv::statement_to_fd(d.statement), goal);
            }
        }
    }
}

#[test]
fn closure_is_monotone_and_idempotent() {
    let fds = FdSet::from_vec(vec![
        Fd::new(AttrSet(0b001), AttrSet(0b010)),
        Fd::new(AttrSet(0b010), AttrSet(0b100)),
    ]);
    for set in all_nonempty_sets(3) {
        let closed = armstrong::closure(set, &fds);
        assert!(set.is_subset(closed), "extensive");
        assert_eq!(
            armstrong::closure(closed, &fds),
            closed,
            "idempotent on {set}"
        );
        for superset in all_nonempty_sets(3) {
            if set.is_subset(superset) {
                assert!(
                    closed.is_subset(armstrong::closure(superset, &fds)),
                    "monotone: {set} ⊆ {superset}"
                );
            }
        }
    }
}
