//! Boundary-condition tests: empty instances, single tuples, all-null
//! rows, trivial dependencies, empty dependency sets, arity-1 schemas.
//! Every public pipeline must behave sensibly at the edges.

use fd_incomplete::core::interp::{self, DEFAULT_BUDGET};
use fd_incomplete::core::{armstrong, chase, normalize, prop1, satisfy, testfd};
use fd_incomplete::prelude::*;
use std::sync::Arc;

fn schema_ab(dom: usize) -> Arc<Schema> {
    Schema::uniform("R", &["A", "B"], dom).unwrap()
}

#[test]
fn empty_instance_satisfies_everything() {
    let schema = schema_ab(2);
    let fds = FdSet::parse(&schema, "A -> B").unwrap();
    let r = Instance::new(schema);
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    assert!(chase::weakly_satisfiable_via_chase(&fds, &r));
    assert!(interp::strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
    assert!(chase::is_minimally_incomplete(&r, &fds));
    let report = satisfy::report(&fds, &r, DEFAULT_BUDGET).unwrap();
    assert!(report.strong && report.weak);
}

#[test]
fn empty_fd_set_is_always_satisfied() {
    let r = Instance::parse(schema_ab(2), "A_0 -\n- B_1").unwrap();
    let fds = FdSet::new();
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert!(chase::weakly_satisfiable_via_chase(&fds, &r));
    let chased = chase::chase_plain(&r, &fds);
    assert!(chased.events.is_empty());
    assert_eq!(chased.instance.canonical_form(), r.canonical_form());
}

#[test]
fn single_tuple_instances() {
    let r = Instance::parse(schema_ab(2), "A_0 -").unwrap();
    let fd = Fd::parse(r.schema(), "A -> B").unwrap();
    let fds = FdSet::from_vec(vec![fd]);
    // one tuple can never violate an FD
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert_eq!(
        interp::eval_least_extension(fd, r.nth_row(0), &r, DEFAULT_BUDGET).unwrap(),
        Truth::True
    );
    // Proposition 1's literal classifier says [T2] here (unique X)
    let o = prop1::proposition1(fd, r.nth_row(0), &r).unwrap();
    assert_eq!(o.verdict, Truth::True);
}

#[test]
fn all_null_tuple() {
    let r = Instance::parse(schema_ab(3), "- -\nA_0 B_0").unwrap();
    let fd = Fd::parse(r.schema(), "A -> B").unwrap();
    let fds = FdSet::from_vec(vec![fd]);
    // ground truth: completing (-,-) to (A_0, B_0) matches; to (A_0, B_1)
    // violates → unknown; instance not strongly satisfied, weakly fine.
    assert!(testfd::check_strong(&r, &fds).is_err());
    assert!(chase::weakly_satisfiable_via_chase(&fds, &r));
    let truth = interp::eval_least_extension(fd, r.nth_row(0), &r, DEFAULT_BUDGET).unwrap();
    assert_eq!(truth, Truth::Unknown);
    // prop-1 literal verdict: nulls on both sides → unknown (approximates)
    let o = prop1::proposition1(fd, r.nth_row(0), &r).unwrap();
    assert!(o.verdict.approximates(truth));
}

#[test]
fn trivial_dependencies_hold_everywhere() {
    let r = Instance::parse(schema_ab(2), "- -\nA_1 -").unwrap();
    let trivial = Fd::parse(r.schema(), "A B -> A").unwrap();
    assert!(trivial.is_trivial());
    let fds = FdSet::from_vec(vec![trivial]);
    assert!(testfd::check_strong(&r, &fds).is_ok());
    for row in r.row_ids() {
        assert_eq!(
            interp::eval_least_extension(trivial, row, &r, DEFAULT_BUDGET).unwrap(),
            Truth::True
        );
    }
    // normalized() keeps trivial FDs intact and FdSet::normalized drops them
    assert_eq!(trivial.normalized(), trivial);
    assert!(fds.normalized().is_empty());
}

#[test]
fn arity_one_schema() {
    let schema = Schema::uniform("R", &["A"], 2).unwrap();
    let r = Instance::parse(schema, "A_0\n-\nA_1").unwrap();
    // no non-trivial FD exists over one attribute; chase with the
    // trivial one is a no-op
    let fds = FdSet::from_vec(vec![Fd::new(AttrSet(1), AttrSet(1))]);
    assert!(testfd::check_strong(&r, &fds).is_ok());
    let chased = chase::chase_plain(&r, &fds);
    assert!(chased.events.is_empty());
}

#[test]
fn closure_of_empty_set_under_empty_fds() {
    assert_eq!(
        armstrong::closure(AttrSet::EMPTY, &FdSet::new()),
        AttrSet::EMPTY
    );
    assert!(armstrong::implies(
        &FdSet::new(),
        Fd::new(AttrSet(0b11), AttrSet(0b01))
    ));
    assert!(!armstrong::implies(
        &FdSet::new(),
        Fd::new(AttrSet(0b01), AttrSet(0b10))
    ));
}

#[test]
fn normalization_of_degenerate_schemas() {
    // single attribute: trivially BCNF, decomposition is the scheme
    let fds = FdSet::new();
    let one = AttrSet(0b1);
    assert!(normalize::is_bcnf(&fds, one));
    assert_eq!(normalize::bcnf_decompose(&fds, one), vec![one]);
    assert!(normalize::is_lossless(&fds, one, &[one]));
    let synth = normalize::synthesize_3nf(&fds, one);
    assert_eq!(synth, vec![one]);
}

#[test]
fn duplicate_tuples_are_harmless() {
    let r = Instance::parse(schema_ab(2), "A_0 B_0\nA_0 B_0\nA_0 B_0").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    assert!(testfd::check_strong(&r, &fds).is_ok());
    let outcome = chase::extended_chase(&r, &fds, Scheduler::Fast);
    assert!(!outcome.has_nothing());
    // the cell engine unifies the duplicate Y cells without complaint
    assert_eq!(outcome.instance.len(), 3);
}

#[test]
fn nothing_everywhere_is_stable() {
    let schema = schema_ab(2);
    let mut r = Instance::new(schema);
    r.add_row(&["#!", "#!"]).unwrap();
    r.add_row(&["#!", "#!"]).unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    // nothing never matches, so no trigger fires; the instance is
    // trivially minimally incomplete but NOT weakly satisfiable
    assert!(chase::is_minimally_incomplete(&r, &fds));
    let outcome = chase::extended_chase(&r, &fds, Scheduler::Fast);
    assert!(outcome.has_nothing());
    assert!(!chase::weakly_satisfiable_via_chase(&fds, &r));
}

#[test]
fn whole_schema_as_lhs_or_rhs() {
    let r = Instance::parse(schema_ab(2), "A_0 B_0\nA_1 B_1").unwrap();
    let all = r.schema().all_attrs();
    // R → R is trivial; A → R normalizes to A → B
    let to_all = Fd::new(AttrSet(0b01), all);
    assert_eq!(to_all.normalized(), Fd::new(AttrSet(0b01), AttrSet(0b10)));
    let fds = FdSet::from_vec(vec![to_all]);
    assert!(testfd::check_strong(&r, &fds).is_ok());
}

#[test]
fn report_on_instance_with_only_nulls_in_one_column() {
    let r = Instance::parse(schema_ab(2), "A_0 -\nA_1 -\nA_0 -").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    let report = satisfy::report(&fds, &r, DEFAULT_BUDGET).unwrap();
    // rows 0 and 2 share A_0 with independent B nulls: not strong
    assert!(!report.strong);
    assert!(report.weak);
    // the chase must introduce an NEC between those two nulls
    let chased = chase::chase_plain(&r, &fds);
    let n0 = chased
        .instance
        .value(chased.instance.nth_row(0), AttrId(1))
        .as_null()
        .unwrap();
    let n2 = chased
        .instance
        .value(chased.instance.nth_row(2), AttrId(1))
        .as_null()
        .unwrap();
    assert!(chased.instance.necs().same_class(n0, n2));
}
