//! The null-comparison conventions of Theorems 2 and 3, pinned down
//! pair-by-pair: for every combination of value kinds on a shared
//! determinant, the TEST-FDs verdicts must match the table derived from
//! the paper's wording, and (where the ground truth is computable) the
//! semantics.

use fd_incomplete::core::interp::{
    strongly_satisfied_bruteforce, weakly_satisfiable_bruteforce, DEFAULT_BUDGET,
};
use fd_incomplete::core::semantics::{self, SemanticsKind};
use fd_incomplete::core::testfd;
use fd_incomplete::gen::{disagreement_workload, workload, WorkloadSpec};
use fd_incomplete::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("R")
        .attribute("A", ["a0", "a1", "a2", "a3"])
        .attribute("B", ["b0", "b1", "b2", "b3"])
        .build()
        .unwrap()
}

/// Builds the two-row instance (`a0 <y1>` / `<x2> <y2>`) and returns the
/// strong/weak verdicts of `A -> B` from TEST-FDs and from brute force.
fn verdicts(x2: &str, y1: &str, y2: &str) -> (bool, bool, bool, bool) {
    let text = format!("a0 {y1}\n{x2} {y2}");
    let r = Instance::parse(schema(), &text).unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    let strong_fast = testfd::check_strong(&r, &fds).is_ok();
    let weak_fast = testfd::check_weak(&r, &fds).is_ok();
    let strong_truth = strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap();
    let weak_truth = weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap();
    (strong_fast, weak_fast, strong_truth, weak_truth)
}

#[test]
fn convention_table_for_shared_determinant() {
    // rows: (x2, y1, y2, strong expected, weak expected)
    // X-side: "a0" = matching constant, "a1" = different constant,
    // "-" = null (potential match under the strong convention only).
    // NEC-equal nulls use a shared mark "?m".
    let cases: &[(&str, &str, &str, bool, bool)] = &[
        // definite X match, definite Y
        ("a0", "b0", "b0", true, true),
        ("a0", "b0", "b1", false, false),
        // definite X mismatch: anything goes
        ("a1", "b0", "b1", true, true),
        ("a1", "-", "b1", true, true),
        // X match, one Y null: could disagree → not strong; weakly fine
        ("a0", "-", "b0", false, true),
        ("a0", "b0", "-", false, true),
        // X match, two independent Y nulls: same
        ("a0", "-", "-", false, true),
        // X match, NEC-equal Y nulls: always equal → strong
        ("a0", "?m", "?m", true, true),
        // null on X vs constant: potential match; Y constants differ
        ("-", "b0", "b1", false, true),
        // null on X, Y constants equal: even a match satisfies
        ("-", "b0", "b0", true, true),
        // null on X, one Y null
        ("-", "b0", "-", false, true),
    ];
    for (x2, y1, y2, strong_expected, weak_expected) in cases {
        let (strong_fast, weak_fast, strong_truth, weak_truth) = verdicts(x2, y1, y2);
        assert_eq!(
            strong_fast, *strong_expected,
            "strong TEST-FDs on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            weak_fast, *weak_expected,
            "weak pipeline on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            strong_truth, *strong_expected,
            "strong ground truth on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            weak_truth, *weak_expected,
            "weak ground truth on (a0 {y1} / {x2} {y2})"
        );
    }
}

#[test]
fn strong_equality_is_not_transitive_but_the_fallback_handles_it() {
    // a null X between two distinct constants: the null potentially
    // matches both, the constants never match each other. A sorted
    // grouping would have to place the null with one of them; the
    // pairwise fallback examines all pairs.
    let r = Instance::parse(schema(), "a0 b0\n- b1\na1 b2").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    // the null row conflicts with both constant rows under strong
    assert!(testfd::check_strong(&r, &fds).is_err());
    assert!(!strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
    // weakly fine: complete the null to a2
    assert!(testfd::check_weak(&r, &fds).is_ok());
    assert!(weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
}

#[test]
fn three_way_nec_chains_compare_equal_everywhere() {
    // ?m in three rows: one class; all conventions treat them equal.
    let r = Instance::parse(schema(), "a0 ?m\na0 ?m\na0 ?m").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    assert!(strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
}

#[test]
fn mixed_marks_and_constants_in_one_group() {
    // group of a0: {?m, ?m, b0}. Strong: the class could differ from b0
    // → not strong; the chase substitutes b0 into the class → weak ok.
    let r = Instance::parse(schema(), "a0 ?m\na0 ?m\na0 b0").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    assert!(testfd::check_strong(&r, &fds).is_err());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    // and the chase indeed writes b0 into both marked cells
    let chased = fd_incomplete::core::chase::chase_plain(&r, &fds);
    for row in 0..2 {
        assert_eq!(
            chased
                .instance
                .value(chased.instance.nth_row(row), AttrId(1))
                .render(chased.instance.symbols(), false),
            "b0"
        );
    }
}

// ---------------------------------------------------------------------
// Differential suites across the full semantics lattice (strong ⊨ ⇒
// null-marker ⊨ ⇒ weak ⊨ ⇒ nfd ⊨ — see `fdi_core::semantics`).
// ---------------------------------------------------------------------

fn diff_spec() -> WorkloadSpec {
    WorkloadSpec {
        rows: 28,
        null_density: 0.25,
        nec_density: 0.3,
        ..WorkloadSpec::default()
    }
}

/// Every convention's violation set contains the next one's, so an `Ok`
/// verdict propagates down the lattice on arbitrary instances.
#[test]
fn verdicts_respect_the_semantics_lattice_on_random_workloads() {
    for seed in 0..32u64 {
        let w = workload(seed, &diff_spec(), 3);
        let mut prev: Option<(SemanticsKind, bool)> = None;
        for kind in SemanticsKind::ALL {
            let ok = testfd::check(&w.instance, &w.fds, kind).is_ok();
            if let Some((prev_kind, prev_ok)) = prev {
                assert!(
                    !prev_ok || ok,
                    "seed {seed}: {prev_kind} satisfied but {kind} violated — lattice broken"
                );
            }
            prev = Some((kind, ok));
        }
    }
}

/// Every reported witness is a genuine violating pair under its own
/// semantics, checkable from first principles via
/// [`testfd::pair_violates`].
#[test]
fn err_witnesses_are_real_violations_under_their_own_semantics() {
    for seed in 0..32u64 {
        let w = workload(seed, &diff_spec(), 3);
        for kind in SemanticsKind::ALL {
            if let Err(v) = testfd::check(&w.instance, &w.fds, kind) {
                let fd = w.fds.fds()[v.fd_index];
                assert!(
                    testfd::pair_violates(&w.instance, fd, v.rows.0, v.rows.1, kind),
                    "seed {seed}: {kind} witness {v} does not violate"
                );
            }
        }
    }
}

/// Four consecutive seeds of the planted generator exhibit, for every
/// unordered pair of conventions, at least one instance where they
/// agree and at least one where they disagree.
#[test]
fn disagreement_generator_covers_every_convention_pair() {
    let mut agree = std::collections::HashSet::new();
    let mut disagree = std::collections::HashSet::new();
    for seed in 0..4u64 {
        let w = disagreement_workload(seed);
        let verdicts: Vec<bool> = SemanticsKind::ALL
            .iter()
            .map(|&k| testfd::check(&w.instance, &w.fds, k).is_ok())
            .collect();
        for i in 0..verdicts.len() {
            for j in i + 1..verdicts.len() {
                if verdicts[i] == verdicts[j] {
                    agree.insert((i, j));
                } else {
                    disagree.insert((i, j));
                }
            }
        }
    }
    for i in 0..SemanticsKind::ALL.len() {
        for j in i + 1..SemanticsKind::ALL.len() {
            let pair = (SemanticsKind::ALL[i], SemanticsKind::ALL[j]);
            assert!(agree.contains(&(i, j)), "no agreeing seed for {pair:?}");
            assert!(
                disagree.contains(&(i, j)),
                "no disagreeing seed for {pair:?}"
            );
        }
    }
}

/// On complete instances every convention degenerates to the classical
/// FD test: identical verdicts and identical canonical witnesses.
#[test]
fn complete_instances_collapse_every_convention_to_one_verdict() {
    for seed in 0..16u64 {
        let spec = WorkloadSpec {
            rows: 24,
            null_density: 0.0,
            collision_rate: 0.5,
            ..WorkloadSpec::default()
        };
        let w = workload(seed, &spec, 3);
        let base = testfd::check(&w.instance, &w.fds, SemanticsKind::Strong);
        for kind in SemanticsKind::ALL {
            assert_eq!(
                testfd::check(&w.instance, &w.fds, kind),
                base,
                "seed {seed}: {kind} diverges on a complete instance"
            );
        }
    }
}

/// The migration gate of the `Semantics` refactor: the zero-sized
/// `semantics::Strong`/`semantics::Weak` impls are bit-identical to the
/// pre-existing `Convention` enum values — verdicts and canonical
/// least-pair witnesses — through every check variant and across
/// executor thread counts.
#[test]
fn zst_and_convention_dispatch_are_bit_identical() {
    for seed in 0..16u64 {
        let w = workload(seed, &diff_spec(), 3);
        let strong_enum = testfd::check(&w.instance, &w.fds, Convention::Strong);
        let weak_enum = testfd::check(&w.instance, &w.fds, Convention::Weak);
        assert_eq!(
            strong_enum,
            testfd::check(&w.instance, &w.fds, semantics::Strong),
            "seed {seed}"
        );
        assert_eq!(
            weak_enum,
            testfd::check(&w.instance, &w.fds, semantics::Weak),
            "seed {seed}"
        );
        assert_eq!(
            strong_enum,
            testfd::check_pairwise(&w.instance, &w.fds, semantics::Strong),
            "seed {seed}"
        );
        assert_eq!(
            weak_enum,
            testfd::check_grouped(&w.instance, &w.fds, semantics::Weak),
            "seed {seed}"
        );
        for threads in [1usize, 4] {
            let exec = fdi_exec::Executor::with_threads(threads);
            assert_eq!(
                strong_enum,
                testfd::check_par(&w.instance, &w.fds, semantics::Strong, &exec),
                "seed {seed}, {threads} thread(s)"
            );
            assert_eq!(
                weak_enum,
                testfd::check_par(&w.instance, &w.fds, semantics::Weak, &exec),
                "seed {seed}, {threads} thread(s)"
            );
            for kind in SemanticsKind::ALL {
                assert_eq!(
                    testfd::check_par(&w.instance, &w.fds, kind, &exec),
                    testfd::check(&w.instance, &w.fds, kind),
                    "seed {seed}, {threads} thread(s), {kind}"
                );
            }
        }
    }
}
