//! The null-comparison conventions of Theorems 2 and 3, pinned down
//! pair-by-pair: for every combination of value kinds on a shared
//! determinant, the TEST-FDs verdicts must match the table derived from
//! the paper's wording, and (where the ground truth is computable) the
//! semantics.

use fd_incomplete::core::interp::{
    strongly_satisfied_bruteforce, weakly_satisfiable_bruteforce, DEFAULT_BUDGET,
};
use fd_incomplete::core::testfd;
use fd_incomplete::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("R")
        .attribute("A", ["a0", "a1", "a2", "a3"])
        .attribute("B", ["b0", "b1", "b2", "b3"])
        .build()
        .unwrap()
}

/// Builds the two-row instance (`a0 <y1>` / `<x2> <y2>`) and returns the
/// strong/weak verdicts of `A -> B` from TEST-FDs and from brute force.
fn verdicts(x2: &str, y1: &str, y2: &str) -> (bool, bool, bool, bool) {
    let text = format!("a0 {y1}\n{x2} {y2}");
    let r = Instance::parse(schema(), &text).unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    let strong_fast = testfd::check_strong(&r, &fds).is_ok();
    let weak_fast = testfd::check_weak(&r, &fds).is_ok();
    let strong_truth = strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap();
    let weak_truth = weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap();
    (strong_fast, weak_fast, strong_truth, weak_truth)
}

#[test]
fn convention_table_for_shared_determinant() {
    // rows: (x2, y1, y2, strong expected, weak expected)
    // X-side: "a0" = matching constant, "a1" = different constant,
    // "-" = null (potential match under the strong convention only).
    // NEC-equal nulls use a shared mark "?m".
    let cases: &[(&str, &str, &str, bool, bool)] = &[
        // definite X match, definite Y
        ("a0", "b0", "b0", true, true),
        ("a0", "b0", "b1", false, false),
        // definite X mismatch: anything goes
        ("a1", "b0", "b1", true, true),
        ("a1", "-", "b1", true, true),
        // X match, one Y null: could disagree → not strong; weakly fine
        ("a0", "-", "b0", false, true),
        ("a0", "b0", "-", false, true),
        // X match, two independent Y nulls: same
        ("a0", "-", "-", false, true),
        // X match, NEC-equal Y nulls: always equal → strong
        ("a0", "?m", "?m", true, true),
        // null on X vs constant: potential match; Y constants differ
        ("-", "b0", "b1", false, true),
        // null on X, Y constants equal: even a match satisfies
        ("-", "b0", "b0", true, true),
        // null on X, one Y null
        ("-", "b0", "-", false, true),
    ];
    for (x2, y1, y2, strong_expected, weak_expected) in cases {
        let (strong_fast, weak_fast, strong_truth, weak_truth) = verdicts(x2, y1, y2);
        assert_eq!(
            strong_fast, *strong_expected,
            "strong TEST-FDs on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            weak_fast, *weak_expected,
            "weak pipeline on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            strong_truth, *strong_expected,
            "strong ground truth on (a0 {y1} / {x2} {y2})"
        );
        assert_eq!(
            weak_truth, *weak_expected,
            "weak ground truth on (a0 {y1} / {x2} {y2})"
        );
    }
}

#[test]
fn strong_equality_is_not_transitive_but_the_fallback_handles_it() {
    // a null X between two distinct constants: the null potentially
    // matches both, the constants never match each other. A sorted
    // grouping would have to place the null with one of them; the
    // pairwise fallback examines all pairs.
    let r = Instance::parse(schema(), "a0 b0\n- b1\na1 b2").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    // the null row conflicts with both constant rows under strong
    assert!(testfd::check_strong(&r, &fds).is_err());
    assert!(!strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
    // weakly fine: complete the null to a2
    assert!(testfd::check_weak(&r, &fds).is_ok());
    assert!(weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
}

#[test]
fn three_way_nec_chains_compare_equal_everywhere() {
    // ?m in three rows: one class; all conventions treat them equal.
    let r = Instance::parse(schema(), "a0 ?m\na0 ?m\na0 ?m").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    assert!(strongly_satisfied_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
}

#[test]
fn mixed_marks_and_constants_in_one_group() {
    // group of a0: {?m, ?m, b0}. Strong: the class could differ from b0
    // → not strong; the chase substitutes b0 into the class → weak ok.
    let r = Instance::parse(schema(), "a0 ?m\na0 ?m\na0 b0").unwrap();
    let fds = FdSet::parse(r.schema(), "A -> B").unwrap();
    assert!(testfd::check_strong(&r, &fds).is_err());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    // and the chase indeed writes b0 into both marked cells
    let chased = fd_incomplete::core::chase::chase_plain(&r, &fds);
    for row in 0..2 {
        assert_eq!(
            chased
                .instance
                .value(chased.instance.nth_row(row), AttrId(1))
                .render(chased.instance.symbols(), false),
            "b0"
        );
    }
}
