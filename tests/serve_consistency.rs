//! The serving concurrency suite: concurrent readers against a live
//! writer must never observe a torn or FD-violating epoch, every
//! observed snapshot must be one the writer actually published, every
//! published epoch must equal a **sequential replay of its accepted-op
//! prefix** (checked bit-identically by fingerprint against an oracle),
//! and the epoch sequence must not depend on the thread count or on how
//! many readers are hammering the publication cell.
//!
//! The suite drives real OS threads: reader threads snapshot in a tight
//! loop while the writer stages, group-commits, and publishes batches
//! of a generated update stream. Readers assert per-handle monotonicity
//! and, for every *newly seen* epoch, full internal consistency (index
//! vs instance, weak satisfiability, sharded select vs sequential
//! select); the main thread then checks every observed stamp against
//! the publication log and replays the log against the oracle.

use fd_incomplete::core::chase;
use fd_incomplete::core::query;
use fd_incomplete::core::update::{Database, Enforcement, LhsIndex, Policy};
use fd_incomplete::gen::{
    satisfiable_workload, scaling_query, update_stream, UpdateMix, UpdateOp, WorkloadSpec,
};
use fd_incomplete::serve::{Epoch, EpochStamp, Reader, ServeConfig, ServeOp, Staged, Writer};
use fd_incomplete::store::MemStorage;
use fdi_exec::Executor;
use fdi_relation::rowid::RowId;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const ATTRS: usize = 3;

fn spec(rows: usize) -> WorkloadSpec {
    WorkloadSpec {
        rows,
        attrs: ATTRS,
        domain: 5,
        null_density: 0.2,
        nec_density: 0.2,
        collision_rate: 0.4,
    }
}

fn mix() -> UpdateMix {
    UpdateMix {
        resolve: 2,
        ..UpdateMix::default()
    }
}

/// A weakly-enforcing database over a guaranteed-satisfiable base —
/// deterministic in `seed`, so calling this twice yields bit-identical
/// twins (one to serve, one to replay the oracle on).
fn base_db(seed: u64, rows: usize) -> Database {
    let w = satisfiable_workload(seed, &spec(rows), 2);
    Database::new(
        w.instance.clone(),
        w.fds.clone(),
        Policy {
            enforcement: Enforcement::Weak,
            propagate: false,
        },
    )
    .expect("satisfiable base")
}

/// The epoch fingerprint, recomputed independently of the serving
/// layer: CRC-32 of the instance's exact encoded state.
fn fingerprint_of(db: &Database) -> u64 {
    let mut state = Vec::new();
    db.instance().encode_state(&mut state);
    fd_incomplete::store::crc::crc32(&state) as u64
}

/// Resolves a stream op's positional row reference to a concrete
/// [`ServeOp`] through the live-row tracker (out-of-range positions —
/// possible once a rejecting policy bounced an insert — resolve to
/// `None` and are skipped, mirroring `fdi_gen::apply_op`).
fn resolve_op(op: &UpdateOp, live: &[RowId]) -> Option<ServeOp> {
    match op {
        UpdateOp::Insert(tokens) => Some(ServeOp::Insert(tokens.clone())),
        UpdateOp::Delete(pos) => live.get(*pos).copied().map(ServeOp::Delete),
        UpdateOp::Modify { row, attr, token } => {
            live.get(*row).copied().map(|id| ServeOp::Modify {
                row: id,
                attr: *attr,
                token: token.clone(),
            })
        }
        UpdateOp::ResolveNull { row, attr, token } => {
            live.get(*row).copied().map(|id| ServeOp::ResolveNull {
                row: id,
                attr: *attr,
                token: token.clone(),
            })
        }
    }
}

/// Applies one compaction remap to the tracker.
fn remap(live: &mut [RowId], moved: &[(RowId, RowId)]) {
    for id in live.iter_mut() {
        if let Some((_, new)) = moved.iter().find(|(old, _)| old == id) {
            *id = *new;
        }
    }
}

/// Stages the stream in publish-batches of `batch`, maintaining the
/// positional tracker. Returns the **attempted** resolved ops of each
/// batch paired with whether the database accepted them — the material
/// both oracles consume — plus the epoch each publish produced. One
/// epoch is published per batch (empty publishes included).
#[allow(clippy::type_complexity)]
fn stage_stream(
    writer: &mut Writer<MemStorage>,
    live: &mut Vec<RowId>,
    stream: &[UpdateOp],
    batch: usize,
) -> (Vec<Vec<(ServeOp, bool)>>, Vec<Arc<Epoch>>) {
    let mut attempted_batches = Vec::new();
    let mut epochs = Vec::new();
    for chunk in stream.chunks(batch) {
        let mut attempted = Vec::new();
        for op in chunk {
            let Some(resolved) = resolve_op(op, live) else {
                continue;
            };
            let accepted = match writer.stage(&resolved).expect("no faults scheduled") {
                Staged::Applied(outcome) => {
                    match (&resolved, op) {
                        (ServeOp::Insert(_), _) => live.push(outcome.row),
                        (ServeOp::Delete(_), UpdateOp::Delete(pos)) => {
                            live.remove(*pos);
                        }
                        _ => {}
                    }
                    true
                }
                Staged::Compacted(moved) => {
                    remap(live, &moved);
                    true
                }
                Staged::Rejected(_) => false,
            };
            attempted.push((resolved, accepted));
        }
        epochs.push(writer.publish().expect("publish"));
        attempted_batches.push(attempted);
    }
    (attempted_batches, epochs)
}

/// Applies one resolved op to an oracle database, returning whether the
/// oracle accepted it.
fn oracle_apply(db: &mut Database, op: &ServeOp) -> bool {
    match op {
        ServeOp::Insert(tokens) => {
            let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
            db.insert(&refs).is_ok()
        }
        ServeOp::Delete(row) => db.delete(*row).is_ok(),
        ServeOp::Modify { row, attr, token } => db.modify(*row, *attr, token).is_ok(),
        ServeOp::ResolveNull { row, attr, token } => db.resolve_null(*row, *attr, token).is_ok(),
        ServeOp::Compact => {
            db.compact();
            true
        }
    }
}

/// Checks the publication log against a sequential replay of the
/// **attempted** batches on a twin of the initial database: the twin
/// must make the same per-op acceptance decisions, and stamp `k+1` must
/// carry the cumulative accepted-op count and the twin's bit-exact
/// fingerprint after batch `k` (the twin re-lives the same rejections,
/// so even the null-allocator residue rejections leave behind matches).
/// Returns the twin in its final state.
fn assert_log_replays(
    initial: Database,
    published: &[EpochStamp],
    attempted_batches: &[Vec<(ServeOp, bool)>],
) -> Database {
    let mut oracle = initial;
    assert_eq!(published.len(), attempted_batches.len() + 1);
    assert_eq!(published[0].ops_applied, 0);
    assert_eq!(published[0].fingerprint, fingerprint_of(&oracle));
    let mut total = 0u64;
    for (k, batch) in attempted_batches.iter().enumerate() {
        for (op, was_accepted) in batch {
            let accepted = oracle_apply(&mut oracle, op);
            assert_eq!(
                accepted, *was_accepted,
                "batch {k}: oracle acceptance diverged on {op:?}"
            );
            if accepted {
                total += 1;
            }
        }
        assert_eq!(published[k + 1].ops_applied, total, "batch {k}");
        assert_eq!(
            published[k + 1].fingerprint,
            fingerprint_of(&oracle),
            "batch {k}: the published epoch is not the sequential replay of its op prefix"
        );
    }
    oracle
}

/// Content-level form of the contract: the **accepted subsequence
/// alone** reproduces every published epoch. Rejections are
/// content-traceless but advance the writer's null allocator, so the
/// comparison is canonical form, markless tableau, and index buckets —
/// the same currency the store layer uses for live-vs-replay equality.
fn assert_accepted_subsequence_reproduces(
    initial: Database,
    attempted_batches: &[Vec<(ServeOp, bool)>],
    epochs: &[Arc<Epoch>],
) {
    let mut content = initial;
    assert_eq!(attempted_batches.len(), epochs.len());
    for (k, (batch, epoch)) in attempted_batches.iter().zip(epochs.iter()).enumerate() {
        for (op, was_accepted) in batch {
            if *was_accepted {
                assert!(
                    oracle_apply(&mut content, op),
                    "batch {k}: accepted op {op:?} bounced on the accepted-only replay"
                );
            }
        }
        assert_eq!(
            epoch.db().instance().canonical_form(),
            content.instance().canonical_form(),
            "batch {k}"
        );
        assert_eq!(
            epoch.db().instance().render(false),
            content.instance().render(false),
            "batch {k}"
        );
        assert!(
            epoch.db().index().same_buckets(content.index()),
            "batch {k}: index buckets diverged from the accepted-only replay"
        );
    }
}

/// Spawns `count` reader threads hammering `reader` until `done`. Each
/// thread asserts per-handle monotonicity on every snapshot and, for
/// each *newly seen* epoch: the delta-maintained index matches a fresh
/// parallel rebuild (no torn epoch), the enforcement invariant holds
/// (no FD-violating epoch), and the sharded select equals the
/// sequential select on the shared snapshot. Returns the distinct
/// stamps each thread observed.
fn spawn_readers(
    reader: &Reader,
    count: usize,
    done: &Arc<AtomicBool>,
) -> Vec<thread::JoinHandle<Vec<EpochStamp>>> {
    (0..count)
        .map(|_| {
            let handle = reader.clone();
            let done = Arc::clone(done);
            thread::spawn(move || {
                let exec = Executor::with_threads(2);
                let mut last_seq = 0u64;
                let mut seen_seqs = HashSet::new();
                let mut seen = Vec::new();
                loop {
                    // read the flag *before* the snapshot so the final
                    // epoch published before `done` is still examined
                    let finished = done.load(Ordering::Acquire);
                    let epoch = handle.snapshot();
                    assert!(
                        epoch.seq() >= last_seq,
                        "epoch sequence went backwards: {} after {}",
                        epoch.seq(),
                        last_seq
                    );
                    last_seq = epoch.seq();
                    if seen_seqs.insert(epoch.seq()) {
                        seen.push(EpochStamp {
                            seq: epoch.seq(),
                            ops_applied: epoch.ops_applied(),
                            fingerprint: epoch.fingerprint(),
                        });
                        let fresh =
                            LhsIndex::build_par(epoch.db().instance(), epoch.db().fds(), &exec);
                        assert!(
                            epoch.db().index().same_buckets(&fresh),
                            "epoch {} was observed with an index inconsistent with its instance",
                            epoch.seq()
                        );
                        assert!(
                            chase::weakly_satisfiable_via_chase(
                                epoch.db().fds(),
                                epoch.db().instance()
                            ),
                            "epoch {} was observed violating the enforcement invariant",
                            epoch.seq()
                        );
                        let q = scaling_query(epoch.db().instance());
                        let par = epoch.select(&q, &exec).expect("select on a snapshot");
                        let sequential =
                            query::select(&q, epoch.db().instance()).expect("sequential select");
                        assert_eq!(par, sequential, "epoch {}", epoch.seq());
                    }
                    if finished {
                        break;
                    }
                    thread::yield_now();
                }
                seen
            })
        })
        .collect()
}

/// The headline test: four reader threads against a live writer. No
/// observed epoch may be torn, FD-violating, or unpublished; the
/// publication log must replay; the final served state must equal the
/// oracle's.
#[test]
fn concurrent_readers_observe_only_published_batch_boundaries() {
    const SEED: u64 = 0x5E11;
    let db = base_db(SEED, 8);
    let mut live: Vec<RowId> = db.instance().row_ids().collect();
    let stream = update_stream(0xAB1E, &spec(8), live.len(), 80, mix());
    let (mut writer, reader) = Writer::create(
        db,
        MemStorage::new(),
        ServeConfig {
            max_batch: 4,
            checkpoint_every: None,
        },
        Executor::with_threads(2),
    )
    .unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&reader, 4, &done);
    let (attempted, epochs) = stage_stream(&mut writer, &mut live, &stream, 5);
    done.store(true, Ordering::Release);

    let log: HashSet<EpochStamp> = writer.published_log().iter().copied().collect();
    for handle in readers {
        let seen = handle.join().expect("a reader thread panicked");
        assert!(!seen.is_empty(), "readers must observe at least one epoch");
        for stamp in seen {
            assert!(
                log.contains(&stamp),
                "a reader observed {stamp:?}, which was never published"
            );
        }
    }
    let oracle = assert_log_replays(base_db(SEED, 8), writer.published_log(), &attempted);
    assert_accepted_subsequence_reproduces(base_db(SEED, 8), &attempted, &epochs);
    assert_eq!(
        writer.db().instance().render(true),
        oracle.instance().render(true),
        "final served state diverged from the sequential oracle"
    );
    assert_eq!(
        reader.snapshot().fingerprint(),
        writer.published_log().last().unwrap().fingerprint
    );
}

/// Determinism across the grid: the same op stream produces the same
/// publication log — same seqs, same op counts, same fingerprints — at
/// every thread count and whether 0 or 3 readers are hammering the
/// cell. A mid-stream compaction exercises the remap path on every run.
#[test]
fn epoch_log_is_bit_identical_across_thread_and_reader_counts() {
    const SEED: u64 = 0xD0E;
    let rows = base_db(SEED, 6).instance().len();
    let stream = update_stream(0xFEED, &spec(6), rows, 48, mix());
    let (head, tail) = stream.split_at(24);
    let mut logs: Vec<(usize, usize, Vec<EpochStamp>)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for readers in [0usize, 3] {
            let db = base_db(SEED, 6);
            let mut live: Vec<RowId> = db.instance().row_ids().collect();
            let (mut writer, reader) = Writer::create(
                db,
                MemStorage::new(),
                ServeConfig {
                    max_batch: 6,
                    checkpoint_every: None,
                },
                Executor::with_threads(threads),
            )
            .unwrap();
            let done = Arc::new(AtomicBool::new(false));
            let handles = spawn_readers(&reader, readers, &done);
            stage_stream(&mut writer, &mut live, head, 6);
            match writer.stage(&ServeOp::Compact).unwrap() {
                Staged::Compacted(moved) => remap(&mut live, &moved),
                other => panic!("compaction must be accepted, got {other:?}"),
            }
            writer.publish().unwrap();
            stage_stream(&mut writer, &mut live, tail, 6);
            done.store(true, Ordering::Release);
            for h in handles {
                h.join().expect("a reader thread panicked");
            }
            logs.push((threads, readers, writer.published_log().to_vec()));
        }
    }
    let (_, _, reference) = &logs[0];
    for (threads, readers, log) in &logs[1..] {
        assert_eq!(
            log, reference,
            "publication log diverged at threads={threads} readers={readers}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized contract check: arbitrary streams, publish cadences,
    /// and group-commit widths. Every published epoch replays; a crash
    /// with staged-but-unpublished work recovers to exactly the last
    /// fully-synced batch boundary (the last published epoch plus any
    /// whole auto-committed groups — never a partial batch).
    #[test]
    fn random_streams_publish_replayable_epochs(
        seed in 0u64..1 << 32,
        rows in 0usize..10,
        ops in 1usize..32,
        batch in 1usize..7,
        max_batch in 1usize..9,
    ) {
        let db = base_db(seed, rows);
        let mut live: Vec<RowId> = db.instance().row_ids().collect();
        let stream = update_stream(seed ^ 0x517E, &spec(rows), live.len(), ops, mix());
        let (mut writer, _reader) = Writer::create(
            db,
            MemStorage::new(),
            ServeConfig { max_batch, checkpoint_every: None },
            Executor::with_threads(2),
        ).unwrap();
        let (attempted, epochs) = stage_stream(&mut writer, &mut live, &stream, batch);
        let published = writer.published_log().to_vec();
        assert_log_replays(base_db(seed, rows), &published, &attempted);

        // stage an insert-only suffix past the last publication, then
        // crash: whole groups of `max_batch` ops auto-committed durably,
        // the remainder is the pending (lost) batch
        let suffix = update_stream(
            seed ^ 0xDEAD,
            &spec(rows),
            live.len(),
            5,
            UpdateMix { insert: 1, delete: 0, modify: 0, resolve: 0 },
        );
        let mut accepted_suffix = Vec::new();
        for op in &suffix {
            let resolved = resolve_op(op, &live).expect("inserts always resolve");
            if let Staged::Applied(outcome) = writer.stage(&resolved).unwrap() {
                live.push(outcome.row);
                accepted_suffix.push(resolved);
            }
        }
        let last = *published.last().unwrap();
        let storage = writer.into_journaled().into_parts().1.into_storage().crash();
        let (rewriter, rereader) = Writer::recover(
            storage,
            ServeConfig::default(),
            Executor::with_threads(1),
        ).unwrap();

        // recovery = genesis + the journaled (accepted) ops up to the
        // last synced boundary: replay exactly those on a fresh twin
        let durable_suffix = (accepted_suffix.len() / max_batch) * max_batch;
        let mut journal_oracle = base_db(seed, rows);
        for batch_ops in &attempted {
            for (op, was_accepted) in batch_ops {
                if *was_accepted {
                    prop_assert!(oracle_apply(&mut journal_oracle, op));
                }
            }
        }
        for op in &accepted_suffix[..durable_suffix] {
            prop_assert!(oracle_apply(&mut journal_oracle, op));
        }
        let epoch = rereader.snapshot();
        prop_assert_eq!(epoch.ops_applied(), last.ops_applied + durable_suffix as u64);
        prop_assert_eq!(rewriter.ops_applied(), last.ops_applied + durable_suffix as u64);
        prop_assert_eq!(epoch.fingerprint(), fingerprint_of(&journal_oracle));
        // and content-wise, when no whole group auto-committed, that is
        // exactly the last *published* epoch
        if durable_suffix == 0 {
            prop_assert_eq!(
                epoch.db().instance().canonical_form(),
                epochs.last().unwrap().db().instance().canonical_form()
            );
        }
    }
}
