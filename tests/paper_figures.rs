//! End-to-end reproduction of every worked figure in the paper
//! (experiments E1–E3, E7, E8 of DESIGN.md, as assertions).

use fd_incomplete::core::fixtures;
use fd_incomplete::core::interp::{self, DEFAULT_BUDGET};
use fd_incomplete::core::prop1::{self, RuleTag};
use fd_incomplete::core::{chase, satisfy, testfd};
use fd_incomplete::prelude::*;

#[test]
fn e1_figure_1_2_both_dependencies_hold() {
    let r = fixtures::figure1_instance();
    let fds = fixtures::figure1_fds();
    assert!(r.is_complete());
    assert!(interp::all_hold_classical(&fds, &r.tuples_vec()));
    assert!(testfd::check_strong(&r, &fds).is_ok());
    assert!(testfd::check_weak(&r, &fds).is_ok());
    // "It is trivial to verify that E# → SL,D# and D# → CT hold" — and
    // the three-valued machinery agrees with the classical one.
    let report = satisfy::report(&fds, &r, DEFAULT_BUDGET).unwrap();
    assert!(report.table.iter().flatten().all(|t| t.is_true()));
}

#[test]
fn e2_figure_1_3_null_instance_verdicts() {
    let r = fixtures::figure1_null_instance();
    let fds = fixtures::figure1_fds();
    let report = satisfy::report(&fds, &r, DEFAULT_BUDGET).unwrap();
    // f1 — every E# unique: strongly holds even with the SL-null ([T2]).
    assert!(report.strong_per_fd[0]);
    // f2 — the D#-null may collide: not strong, but weakly held.
    assert!(!report.strong_per_fd[1]);
    assert!(report.weak_per_fd[1]);
    // Set-level: weakly satisfiable, not strongly satisfied.
    assert!(!report.strong);
    assert!(report.weak);
}

#[test]
fn e3_figure_2_classification_table() {
    // The table the paper prints under Figure 2, with rule tags.
    let expected = [
        (RuleTag::T2, Truth::True),
        (RuleTag::T3, Truth::True),
        (RuleTag::T3, Truth::True),
        (RuleTag::F2, Truth::False),
    ];
    for (i, (r, paper_truth)) in fixtures::figure2_all().into_iter().enumerate() {
        let fd = fixtures::figure2_fd(&r);
        let outcome = prop1::proposition1(fd, r.nth_row(0), &r).unwrap();
        assert_eq!(outcome.rule, expected[i].0, "r{} rule", i + 1);
        assert_eq!(outcome.verdict, expected[i].1, "r{} verdict", i + 1);
        assert_eq!(outcome.verdict, paper_truth);
        // the classification equals the least-extension ground truth
        let ground = interp::eval_least_extension(fd, r.nth_row(0), &r, DEFAULT_BUDGET).unwrap();
        assert_eq!(ground, paper_truth, "r{} ground truth", i + 1);
    }
}

#[test]
fn e4_two_tuple_observations() {
    // Strong satisfiability is decidable two-tuple-locally; weak is not:
    // r4 is the paper's counterexample.
    let r4 = fixtures::figure2_r4();
    let f = FdSet::from_vec(vec![fixtures::figure2_fd(&r4)]);
    // every 2-tuple subrelation: weakly satisfiable
    for skip in 0..r4.len() {
        let mut sub = Instance::new(r4.schema().clone());
        for (i, t) in r4.tuples().enumerate() {
            if i != skip {
                sub.add_tuple(t.clone()).unwrap();
            }
        }
        assert!(
            interp::weakly_satisfiable_bruteforce(&f, &sub, DEFAULT_BUDGET).unwrap(),
            "subrelation without t{}",
            skip + 1
        );
    }
    // the full relation is not
    assert!(!interp::weakly_satisfiable_bruteforce(&f, &r4, DEFAULT_BUDGET).unwrap());

    // Strong locality: on a spread of instances, strong satisfiability
    // equals strong satisfiability of every 2-tuple subrelation.
    let samples = [
        fixtures::figure2_r1(),
        fixtures::figure2_r2(),
        fixtures::figure2_r3(),
        fixtures::figure2_r4(),
        fixtures::figure1_null_instance(),
    ];
    for r in samples {
        let schema = r.schema().clone();
        let fds = if schema.arity() == 3 {
            FdSet::parse(&schema, "A B -> C").unwrap()
        } else {
            fixtures::figure1_fds()
        };
        let whole = testfd::check_strong(&r, &fds).is_ok();
        let mut all_pairs = true;
        let rows: Vec<_> = r.row_ids().collect();
        for (p, &i) in rows.iter().enumerate() {
            for &j in &rows[(p + 1)..] {
                let mut sub = Instance::new(schema.clone());
                sub.add_tuple(r.tuple(i).clone()).unwrap();
                sub.add_tuple(r.tuple(j).clone()).unwrap();
                all_pairs &= testfd::check_strong(&sub, &fds).is_ok();
            }
        }
        assert_eq!(whole, all_pairs, "strong two-tuple locality");
    }
}

#[test]
fn e7_section6_interaction() {
    let r = fixtures::section6_instance();
    let fds = fixtures::section6_fds();
    // individually weak, jointly unsatisfiable
    assert!(interp::weakly_holds_each_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
    assert!(!interp::weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
    // both fast pipelines see it
    assert!(testfd::check_weak(&r, &fds).is_err());
    assert!(!chase::weakly_satisfiable_via_chase(&fds, &r));
}

#[test]
fn e8_figure5_nonconfluence_and_theorem4() {
    let r = fixtures::figure5_instance();
    let fds = fixtures::figure5_fds();

    // plain rules: two different minimally incomplete states
    let forward = chase::chase_plain(&r, &fds);
    let backward = chase::chase_plain(&r, &fds.permuted(&[1, 0]));
    assert!(chase::is_minimally_incomplete(&forward.instance, &fds));
    assert!(chase::is_minimally_incomplete(&backward.instance, &fds));
    assert_ne!(
        forward.instance.canonical_form(),
        backward.instance.canonical_form()
    );

    // extended rules: unique result, B column all nothing
    let e1 = chase::extended_chase(&r, &fds, Scheduler::Fast);
    let e2 = chase::extended_chase(&r, &fds.permuted(&[1, 0]), Scheduler::NaivePairs);
    assert_eq!(e1.instance.canonical_form(), e2.instance.canonical_form());
    let b = AttrId(1);
    for row in r.row_ids() {
        assert!(e1.instance.value(row, b).is_nothing());
    }
    // Theorem 4(b): nothing present ⟺ not weakly satisfiable
    assert!(!chase::weakly_satisfiable_via_chase(&fds, &r));
    assert!(!interp::weakly_satisfiable_bruteforce(&fds, &r, DEFAULT_BUDGET).unwrap());
}
