//! The query-compilation equivalence suite: the compiled evaluator
//! ([`CompiledQuery`]) must be **bit-identical** to the reference
//! signature evaluator on every path — per-row verdicts, whole-instance
//! answer sets (ordering included), and first-error semantics — at
//! every thread count from 1 to 8, with and without memoization, on
//! workloads that exercise shared NEC classes, cross-column classes,
//! `nothing`-bearing tuples, post-`compact()` arenas, and unbounded
//! domains. The incremental lane holds [`IncrementalSelection`] to the
//! same answer as a fresh `select` after **every** op of randomized
//! update streams (compactions included), while asserting the
//! maintenance stayed O(touched) rather than O(n) per op.

use fd_incomplete::core::chase;
use fd_incomplete::core::query::{
    self, eval_least_extension, eval_signature, select, select_par, Atom, CompiledQuery,
    IncrementalSelection, Query,
};
use fd_incomplete::gen::{
    extended_workload, large_workload, scaling_query, scaling_spec, update_stream, UpdateMix,
    UpdateOp, Workload,
};
use fd_incomplete::prelude::*;
use fdi_exec::Executor;
use fdi_relation::rowid::RowId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random query tree over the instance's schema: `Eq` / `In` /
/// `EqAttr` atoms (including degenerate shapes the planner folds —
/// `t[a] = t[a]`, empty and single-member `In` sets) under random
/// `Not` / `And` / `Or` connectives.
fn random_query(rng: &mut StdRng, instance: &Instance, depth: usize) -> Query {
    let arity = instance.arity();
    if depth == 0 || rng.gen_bool(0.4) {
        let attr = AttrId(rng.gen_range(0..arity) as u16);
        return match rng.gen_range(0..4) {
            0 => {
                let members = instance.domain(attr).members();
                if members.is_empty() {
                    Query::Atom(Atom::EqAttr(attr, attr))
                } else {
                    Query::Atom(Atom::Eq(attr, members[rng.gen_range(0..members.len())]))
                }
            }
            1 => {
                let members = instance.domain(attr).members();
                let take = rng.gen_range(0..=members.len().min(4));
                let mut set = Vec::new();
                for _ in 0..take {
                    set.push(members[rng.gen_range(0..members.len())]);
                }
                Query::Atom(Atom::In(attr, set))
            }
            _ => {
                let b = AttrId(rng.gen_range(0..arity) as u16);
                Query::Atom(Atom::EqAttr(attr, b))
            }
        };
    }
    let lhs = random_query(rng, instance, depth - 1);
    match rng.gen_range(0..3) {
        0 => lhs.not(),
        1 => lhs.and(random_query(rng, instance, depth - 1)),
        _ => lhs.or(random_query(rng, instance, depth - 1)),
    }
}

/// Holds the compiled plan to the reference evaluators on one
/// instance: per-row (memoized and memo-free) against
/// [`eval_signature`], and whole-instance against [`select`] /
/// [`select_par`] at thread counts 1–8 — `Result`-level equality, so
/// errors (payload included) must match too.
fn assert_equiv(label: &str, q: &Query, instance: &Instance) {
    let plan = CompiledQuery::compile(q, instance);
    let mut scratch = query::EvalScratch::default();
    let mut memo = query::SignatureMemo::default();
    for row in instance.row_ids() {
        let reference = eval_signature(q, row, instance);
        let bare = plan.eval(row, instance, &mut scratch, None);
        assert_eq!(reference, bare, "{label}: row {row:?} (no memo)");
        let memoized = plan.eval(row, instance, &mut scratch, Some(&mut memo));
        assert_eq!(reference, memoized, "{label}: row {row:?} (memo)");
    }

    let oracle = select(q, instance);
    assert_eq!(oracle, plan.select(instance), "{label}: select");
    for threads in 1..=8 {
        let exec = Executor::with_threads(threads);
        assert_eq!(
            oracle,
            select_par(q, instance, &exec),
            "{label}: select_par @ {threads} threads"
        );
        assert_eq!(
            oracle,
            plan.select_par(instance, &exec),
            "{label}: compiled select_par @ {threads} threads"
        );
    }
}

/// Spot-checks [`eval_signature`] (and therefore the compiled path,
/// already held equal to it) against the brute-force
/// [`eval_least_extension`] on rows whose completion space fits the
/// budget.
fn assert_least_extension_agrees(label: &str, q: &Query, instance: &Instance) {
    const BUDGET: u128 = 1 << 14;
    for row in instance.row_ids().take(8) {
        // Err = over budget or unbounded — nothing to certify there.
        if let Ok(truth) = eval_least_extension(q, row, instance, BUDGET) {
            assert_eq!(
                Ok(truth),
                eval_signature(q, row, instance),
                "{label}: row {row:?} vs least-extension"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared-NEC workloads: compiled ≡ signature ≡ select/select_par
    /// across thread counts, on the scaling query and random trees.
    #[test]
    fn compiled_matches_reference_on_large_workloads(
        seed in 0u64..1 << 32,
        rows in 10usize..48,
    ) {
        let w = large_workload(seed, rows, 0.3, 0.4, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_0000_0001);
        let mut queries = vec![scaling_query(&w.instance)];
        for _ in 0..3 {
            queries.push(random_query(&mut rng, &w.instance, 3));
        }
        for (i, q) in queries.iter().enumerate() {
            assert_equiv(&format!("large seed={seed} q{i}"), q, &w.instance);
        }
        assert_least_extension_agrees(&format!("large seed={seed}"), &queries[0], &w.instance);
    }

    /// Cross-column NEC classes and `nothing`-bearing tuples (planted
    /// conflicts pushed through the extended chase), then the same
    /// instance again after deletions and a `compact()` — verdicts must
    /// survive the arena reshuffle.
    #[test]
    fn compiled_matches_reference_on_extended_and_compacted(seed in 0u64..1 << 32) {
        let w: Workload = extended_workload(seed, 32, 3, 5, 2);
        let chased = chase::extended_chase(&w.instance, &w.fds, Scheduler::Fast);
        let mut instance = chased.instance;
        let mut rng = StdRng::seed_from_u64(seed);
        let queries: Vec<Query> = (0..3).map(|_| random_query(&mut rng, &instance, 3)).collect();
        for (i, q) in queries.iter().enumerate() {
            assert_equiv(&format!("extended seed={seed} q{i}"), q, &instance);
        }

        // Delete a third of the rows, compact, and re-hold equivalence
        // on the moved arena.
        let ids: Vec<RowId> = instance.row_ids().collect();
        for id in ids.iter().step_by(3) {
            instance.remove_row(*id);
        }
        let moved = instance.compact();
        prop_assert!(instance.row_ids().count() > 0);
        let _ = moved;
        for (i, q) in queries.iter().enumerate() {
            assert_equiv(&format!("compacted seed={seed} q{i}"), q, &instance);
        }
    }

    /// The incremental lane: after every accepted op of a randomized
    /// update stream (and periodic compactions), the materialized
    /// selection equals a fresh `select` — and the total evaluation
    /// count stays far below re-scanning per op.
    #[test]
    fn incremental_selection_matches_select_under_update_streams(seed in 0u64..1 << 32) {
        let start_rows = 24usize;
        let w = large_workload(seed, start_rows, 0.25, 0.3, 3);
        let mut db = Database::new(w.instance.clone(), w.fds.clone(), Policy::default())
            .expect("large_workload is weakly satisfiable");

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let queries = [scaling_query(db.instance()), random_query(&mut rng, db.instance(), 2)];
        let mut incs: Vec<IncrementalSelection> = queries
            .iter()
            .map(|q| {
                let plan = Arc::new(CompiledQuery::compile_with_fds(q, db.instance(), db.fds()));
                IncrementalSelection::new(plan, db.instance()).expect("finite domains")
            })
            .collect();

        let spec = scaling_spec(start_rows, 0.25, 0.3);
        let mix = UpdateMix { resolve: 2, ..UpdateMix::default() };
        let ops = update_stream(seed ^ 0xabcd, &spec, start_rows, 48, mix);

        // Display-order live tracker resolving the stream's positional
        // row references, mirroring `fdi_gen::apply_op`.
        let mut live: Vec<RowId> = db.instance().row_ids().collect();
        let mut applied = 0u32;
        for op in &ops {
            let outcome = match op {
                UpdateOp::Insert(tokens) => {
                    let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
                    match db.insert(&refs) {
                        Ok(out) => {
                            live.push(out.row);
                            Some(out)
                        }
                        Err(_) => None,
                    }
                }
                UpdateOp::Delete(pos) => match live.get(*pos).copied() {
                    Some(row) => match db.delete(row) {
                        Ok(out) => {
                            live.remove(*pos);
                            Some(out)
                        }
                        Err(_) => None,
                    },
                    None => None,
                },
                UpdateOp::Modify { row, attr, token } => live
                    .get(*row)
                    .copied()
                    .and_then(|id| db.modify(id, *attr, token).ok()),
                UpdateOp::ResolveNull { row, attr, token } => live
                    .get(*row)
                    .copied()
                    .and_then(|id| db.resolve_null(id, *attr, token).ok()),
            };
            let Some(outcome) = outcome else { continue };
            applied += 1;
            for (q, inc) in queries.iter().zip(incs.iter_mut()) {
                inc.apply_outcome(db.instance(), &outcome).expect("finite domains");
                prop_assert_eq!(
                    inc.selection(),
                    select(q, db.instance()).expect("finite domains"),
                    "after op {:?}",
                    op
                );
            }
            if applied.is_multiple_of(16) {
                let moved = db.compact();
                for &(from, to) in &moved {
                    for slot in live.iter_mut() {
                        if *slot == from {
                            *slot = to;
                        }
                    }
                }
                for (q, inc) in queries.iter().zip(incs.iter_mut()) {
                    inc.note_compacted(db.instance(), &moved);
                    prop_assert_eq!(
                        inc.selection(),
                        select(q, db.instance()).expect("finite domains"),
                        "after compact"
                    );
                }
            }
        }

        // O(touched), not O(n): one initial full scan plus a handful of
        // rows per op — far below one full scan *per op*.
        let rescan_cost = (db.instance().row_ids().count() as u64 + start_rows as u64) / 2
            * u64::from(applied);
        if applied > 8 {
            for inc in &incs {
                prop_assert!(
                    inc.evals() < start_rows as u64 + rescan_cost / 2,
                    "evals {} vs rescan cost {}",
                    inc.evals(),
                    rescan_cost
                );
            }
        }
    }
}

/// The memo must actually fire on workloads with shared NEC classes:
/// rows whose in-scope signatures coincide replay the cached verdict.
#[test]
fn memo_hit_rate_positive_on_shared_nec_workload() {
    let w = large_workload(7, 2000, 0.25, 0.3, 4);
    let q = scaling_query(&w.instance);
    let plan = CompiledQuery::compile(&q, &w.instance);
    let exec = Executor::with_threads(1);
    let (sel, stats) = plan
        .select_par_stats(&w.instance, &exec)
        .expect("finite domains");
    assert_eq!(sel, select(&q, &w.instance).expect("finite domains"));
    assert!(
        stats.hits > 0,
        "expected memo hits on a shared-NEC workload, got {stats:?}"
    );
    assert!(stats.misses > 0, "a fresh memo must miss at least once");
}

/// First-error semantics on unbounded domains: the compiled path must
/// report the same error (attribute payload included) as the reference,
/// from the lowest erroring row, at every thread count.
#[test]
fn unbounded_domain_first_error_is_identical() {
    let schema = Schema::builder("People")
        .attribute("dept", ["sales", "eng"])
        .attribute_unbounded("name")
        .build()
        .unwrap();
    let instance = Instance::parse(
        schema,
        "sales alice\n\
         -     bob\n\
         eng   ?x\n\
         -     ?y",
    )
    .unwrap();
    let name = instance.schema().attr_id("name").unwrap();
    let q = Query::Atom(Atom::EqAttr(name, name))
        .not()
        .or(Query::eq_text(&instance, "dept", "sales").unwrap());

    let plan = CompiledQuery::compile(&q, &instance);
    let oracle = select(&q, &instance);
    assert!(
        oracle.is_err(),
        "nulls on an unbounded attribute must error"
    );
    assert_eq!(oracle, plan.select(&instance));
    for threads in 1..=8 {
        let exec = Executor::with_threads(threads);
        assert_eq!(oracle, select_par(&q, &instance, &exec));
        assert_eq!(oracle, plan.select_par(&instance, &exec));
    }

    // Rows 0–1 are null-free on scope and evaluate fine; the first
    // error comes from row 2, not row 3.
    let mut scratch = query::EvalScratch::default();
    assert!(plan
        .eval(instance.nth_row(0), &instance, &mut scratch, None)
        .is_ok());
    assert_eq!(
        eval_signature(&q, instance.nth_row(2), &instance),
        plan.eval(instance.nth_row(2), &instance, &mut scratch, None)
    );
}

/// `nothing`-bearing tuples written directly in source text: the
/// compiled evaluator must agree with the reference on every mixed
/// row, including `nothing` inside and outside the query scope.
#[test]
fn nothing_tuples_match_reference() {
    let schema = Schema::builder("R")
        .attribute("A", ["a1", "a2"])
        .attribute("B", ["b1", "b2"])
        .attribute("C", ["c1", "c2"])
        .build()
        .unwrap();
    let instance = Instance::parse(
        schema,
        "a1 b1 c1\n\
         #! b1 c1\n\
         a1 #! c2\n\
         #! #! #!\n\
         ?x #! c1\n\
         a2 ?y #!",
    )
    .unwrap();
    let a = instance.schema().attr_id("A").unwrap();
    let b = instance.schema().attr_id("B").unwrap();
    let queries = [
        Query::eq_text(&instance, "A", "a1").unwrap(),
        Query::eq_text(&instance, "B", "b1").unwrap().not(),
        Query::Atom(Atom::EqAttr(a, b)),
        Query::eq_text(&instance, "A", "a2")
            .unwrap()
            .and(Query::eq_text(&instance, "C", "c1").unwrap().not()),
    ];
    for (i, q) in queries.iter().enumerate() {
        assert_equiv(&format!("nothing q{i}"), q, &instance);
    }
}
