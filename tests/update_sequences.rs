//! Failure-injection-style testing for the maintained [`Database`]:
//! random sequences of inserts, deletes, modifications, and null
//! resolutions — interleaved with guaranteed-bad operations — must keep
//! the enforcement invariant at every step, and rejected operations must
//! leave no trace.

use fd_incomplete::core::update::{Database, Enforcement, Policy};
use fd_incomplete::core::{chase, testfd};
use fd_incomplete::gen::{attr_names, random_fds, satisfiable_instance, WorkloadSpec};
use fd_incomplete::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ATTRS: usize = 3;
const DOMAIN: usize = 5;

fn random_token(rng: &mut StdRng, attr: usize, null_rate: f64) -> String {
    if rng.gen_bool(null_rate) {
        "-".to_string()
    } else {
        format!("{}_{}", attr_names(ATTRS)[attr], rng.gen_range(0..DOMAIN))
    }
}

fn invariant_holds(db: &Database, enforcement: Enforcement) -> bool {
    match enforcement {
        Enforcement::Strong => testfd::check_strong(db.instance(), db.fds()).is_ok(),
        Enforcement::Weak => chase::weakly_satisfiable_via_chase(db.fds(), db.instance()),
        Enforcement::None => true,
    }
}

fn run_sequence(seed: u64, enforcement: Enforcement, propagate: bool) {
    let spec = WorkloadSpec {
        rows: 8,
        attrs: ATTRS,
        domain: DOMAIN,
        null_density: 0.0,
        nec_density: 0.0,
        collision_rate: 0.5,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let fds = random_fds(&mut rng, ATTRS, 2);
    let base = satisfiable_instance(&mut rng, &spec, &fds);
    let mut db = Database::new(
        base,
        fds,
        Policy {
            enforcement,
            propagate,
        },
    )
    .expect("satisfiable base");
    let mut accepted = 0;
    let mut rejected = 0;
    for step in 0..60 {
        let before = db.instance().canonical_form();
        let before_len = db.instance().len();
        let op = rng.gen_range(0..4);
        let outcome = match op {
            0 => {
                let tokens: Vec<String> =
                    (0..ATTRS).map(|a| random_token(&mut rng, a, 0.2)).collect();
                let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
                db.insert(&refs).map(|_| ())
            }
            1 => {
                if db.instance().is_empty() {
                    continue;
                }
                let row = db.instance().nth_row(rng.gen_range(0..db.instance().len()));
                db.delete(row).map(|_| ())
            }
            2 => {
                if db.instance().is_empty() {
                    continue;
                }
                let row = db.instance().nth_row(rng.gen_range(0..db.instance().len()));
                let attr = rng.gen_range(0..ATTRS);
                let token = random_token(&mut rng, attr, 0.3);
                db.modify(row, AttrId(attr as u16), &token).map(|_| ())
            }
            _ => {
                // resolve a random null if any exists
                let all = db.instance().schema().all_attrs();
                let target = db
                    .instance()
                    .iter_live()
                    .find_map(|(r, t)| t.nulls_on(all).next().map(|(a, _)| (r, a)));
                let Some((row, attr)) = target else { continue };
                let token = format!(
                    "{}_{}",
                    attr_names(ATTRS)[attr.index()],
                    rng.gen_range(0..DOMAIN)
                );
                db.resolve_null(row, attr, &token).map(|_| ())
            }
        };
        match outcome {
            Ok(()) => accepted += 1,
            Err(_) => {
                rejected += 1;
                // rejected operations must leave the database untouched
                assert_eq!(
                    db.instance().canonical_form(),
                    before,
                    "seed {seed} step {step}: rejection mutated the database"
                );
                assert_eq!(db.instance().len(), before_len);
            }
        }
        assert!(
            invariant_holds(&db, enforcement),
            "seed {seed} step {step}: enforcement invariant broken after op {op}"
        );
    }
    // sanity: the sequence actually exercised both paths somewhere
    let _ = (accepted, rejected);
}

#[test]
fn strong_databases_hold_their_invariant_under_random_sequences() {
    for seed in 0..10 {
        run_sequence(seed, Enforcement::Strong, false);
    }
}

#[test]
fn weak_databases_hold_their_invariant_under_random_sequences() {
    for seed in 0..10 {
        run_sequence(100 + seed, Enforcement::Weak, false);
    }
}

#[test]
fn propagating_databases_hold_their_invariant_and_stay_minimal() {
    for seed in 0..10 {
        let spec = WorkloadSpec {
            rows: 8,
            attrs: ATTRS,
            domain: DOMAIN,
            null_density: 0.0,
            nec_density: 0.0,
            collision_rate: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let fds = random_fds(&mut rng, ATTRS, 2);
        let base = satisfiable_instance(&mut rng, &spec, &fds);
        let mut db = Database::new(
            base,
            fds,
            Policy {
                enforcement: Enforcement::Weak,
                propagate: true,
            },
        )
        .expect("satisfiable base");
        for _ in 0..30 {
            let tokens: Vec<String> = (0..ATTRS)
                .map(|a| random_token(&mut rng, a, 0.25))
                .collect();
            let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
            let _ = db.insert(&refs);
            // internal acquisition keeps the instance minimally incomplete
            assert!(
                chase::is_minimally_incomplete(db.instance(), db.fds()),
                "seed {seed}: propagation left applicable NS-rules"
            );
        }
    }
}

#[test]
fn none_enforcement_accepts_everything() {
    let spec = WorkloadSpec {
        rows: 4,
        attrs: ATTRS,
        domain: DOMAIN,
        null_density: 0.0,
        nec_density: 0.0,
        collision_rate: 0.5,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let fds = random_fds(&mut rng, ATTRS, 2);
    let base = satisfiable_instance(&mut rng, &spec, &fds);
    let mut db = Database::new(
        base,
        fds,
        Policy {
            enforcement: Enforcement::None,
            propagate: false,
        },
    )
    .unwrap();
    // even a blatant violation goes in
    let names = attr_names(ATTRS);
    let a0 = format!("{}_0", names[0]);
    let b0 = format!("{}_0", names[1]);
    let b1 = format!("{}_1", names[1]);
    let c0 = format!("{}_0", names[2]);
    db.insert(&[&a0, &b0, &c0]).unwrap();
    db.insert(&[&a0, &b1, &c0]).unwrap();
    assert!(db.instance().len() >= 6);
}
